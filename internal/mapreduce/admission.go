package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the cluster's job admission controller: a bounded queue in
// front of RunCtx that caps how many jobs execute at once, how many may
// wait, and how long an admitted job may run. Without it RunCtx admits
// unconditionally (the batch behaviour every existing caller relies on);
// with it a serving front end can push arbitrary client traffic at the
// cluster and get typed back-pressure instead of unbounded goroutine and
// slot contention.

// ErrOverloaded is returned when a job is rejected because the in-flight
// cap and the wait queue are both full. Rejections carry an
// *OverloadError with the occupancy observed at decision time.
var ErrOverloaded = errors.New("mapreduce: cluster overloaded")

// ErrDraining is returned for jobs submitted after Drain began: the
// cluster finishes what it admitted and accepts nothing new.
var ErrDraining = errors.New("mapreduce: cluster draining")

// OverloadError details one admission rejection. It wraps ErrOverloaded,
// and by construction InFlight == MaxInFlight and Queued == QueueDepth:
// the controller only rejects when both the run slots and the queue were
// genuinely full, a claim the scheduler property tests verify.
type OverloadError struct {
	InFlight, MaxInFlight int
	Queued, QueueDepth    int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("mapreduce: cluster overloaded: %d/%d jobs in flight, %d/%d queued",
		e.InFlight, e.MaxInFlight, e.Queued, e.QueueDepth)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig bounds concurrent job execution.
type AdmissionConfig struct {
	// MaxInFlight is the number of jobs that may execute at once
	// (minimum 1).
	MaxInFlight int
	// QueueDepth is the number of jobs that may wait for a run slot; a
	// submission finding the queue full is rejected with ErrOverloaded.
	QueueDepth int
	// JobDeadline, when positive, bounds each admitted job's execution:
	// the job's context expires after this long in RunCtx.
	JobDeadline time.Duration
}

// admission is the controller state. Grants are FIFO: a freed run slot
// goes to the oldest waiter.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inFlight int
	queue    []chan struct{} // FIFO; closing a channel grants its waiter
	draining bool
	idle     chan struct{} // non-nil once Drain starts; closed at quiescence
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &admission{cfg: cfg}
}

// enter admits one job, queueing when the in-flight cap is reached. It
// returns the release function the job must call when finished.
func (a *admission) enter(ctx context.Context) (func(), error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.inFlight < a.cfg.MaxInFlight {
		a.inFlight++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queue) >= a.cfg.QueueDepth {
		err := &OverloadError{
			InFlight: a.inFlight, MaxInFlight: a.cfg.MaxInFlight,
			Queued: len(a.queue), QueueDepth: a.cfg.QueueDepth,
		}
		a.mu.Unlock()
		return nil, err
	}
	grant := make(chan struct{})
	a.queue = append(a.queue, grant)
	a.mu.Unlock()

	select {
	case <-grant:
		// grantLocked already moved us into inFlight.
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, g := range a.queue {
			if g == grant {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		// The grant raced the cancellation: we already hold a run slot
		// and must give it back.
		a.inFlight--
		a.grantLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a run slot, promoting the oldest waiter.
func (a *admission) release() {
	a.mu.Lock()
	a.inFlight--
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked hands free run slots to waiters and signals drain
// quiescence. Callers hold a.mu.
func (a *admission) grantLocked() {
	for a.inFlight < a.cfg.MaxInFlight && len(a.queue) > 0 {
		grant := a.queue[0]
		a.queue = a.queue[1:]
		a.inFlight++
		close(grant)
	}
	if a.idle != nil && a.inFlight == 0 && len(a.queue) == 0 {
		select {
		case <-a.idle: // already closed
		default:
			close(a.idle)
		}
	}
}

// drain stops admission and returns a channel closed once every admitted
// job — in flight and queued — has finished.
func (a *admission) drain() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	if a.idle == nil {
		a.idle = make(chan struct{})
		if a.inFlight == 0 && len(a.queue) == 0 {
			close(a.idle)
		}
	}
	return a.idle
}

// stats returns the current occupancy.
func (a *admission) stats() (inFlight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, len(a.queue)
}

// SetAdmission installs a job admission controller on the cluster:
// subsequent RunCtx calls are admitted, queued or rejected under cfg.
// Installing replaces any previous controller (and forgets its drain
// state); a serving layer installs it once at startup.
func (c *Cluster) SetAdmission(cfg AdmissionConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admit = newAdmission(cfg)
}

// admission returns the installed controller, or nil.
func (c *Cluster) admission() *admission {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admit
}

// AdmissionStats reports the controller's occupancy (0, 0 when no
// controller is installed).
func (c *Cluster) AdmissionStats() (inFlight, queued int) {
	if a := c.admission(); a != nil {
		return a.stats()
	}
	return 0, 0
}

// Drain stops admitting jobs and waits until every already admitted job
// (running or queued) has finished, or ctx expires. Jobs submitted after
// Drain begins fail with ErrDraining. Draining a cluster with no
// admission controller is a no-op.
func (c *Cluster) Drain(ctx context.Context) error {
	a := c.admission()
	if a == nil {
		return nil
	}
	select {
	case <-a.drain():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
