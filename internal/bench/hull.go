package bench

import (
	"fmt"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("fig27", "Convex hull on OSM-like data: runtime sweep + partitions processed", runFig27)
	register("fig28", "Convex hull on SYNTH (uniform) incl. enhanced variant", runFig28)
}

func runFig27(cfg Config) error {
	t := newTable(cfg.W, "points", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)",
		"hadoop-parts", "shadoop-parts", "sh-speedup")
	for _, base := range []int{50000, 100000, 200000, 400000} {
		n := cfg.n(base)
		pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)

		dSingle, _ := timed(func() error {
			_ = cg.ConvexHullSingle(pts)
			return nil
		})

		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			return err
		}
		var repH *mapreduce.Report
		dHadoop, err := timed(func() error {
			var err error
			_, repH, err = cg.ConvexHullHadoop(sys, "heap")
			return err
		})
		if err != nil {
			return err
		}

		if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
			return err
		}
		var repS *mapreduce.Report
		dSH, err := timed(func() error {
			var err error
			_, repS, err = cg.ConvexHullSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		simH := simDur(dHadoop, repH, cfg.Workers)
		simS := simDur(dSH, repS, cfg.Workers)
		t.add(fmt.Sprintf("%d", n), ms(dSingle), ms(simH), ms(simS),
			fmt.Sprintf("%d", repH.Splits), fmt.Sprintf("%d", repS.Splits),
			speedup(dSingle, simS))
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nShape to match Fig. 27: the four-skylines filter keeps the processed")
	fmt.Fprintln(cfg.W, "partition count roughly constant while Hadoop reads the whole file.")
	return nil
}

func runFig28(cfg Config) error {
	t := newTable(cfg.W, "points", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)", "enhanced-sim(ms)", "enh-forwarded")
	for _, base := range []int{50000, 100000, 200000, 400000} {
		n := cfg.n(base)
		pts := datagen.Points(datagen.Uniform, n, benchArea, cfg.Seed)

		dSingle, _ := timed(func() error {
			_ = cg.ConvexHullSingle(pts)
			return nil
		})
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			return err
		}
		var repH, repS, repE *mapreduce.Report
		dHadoop, err := timed(func() error {
			var err error
			_, repH, err = cg.ConvexHullHadoop(sys, "heap")
			return err
		})
		if err != nil {
			return err
		}
		if _, err := sys.LoadPoints("idx", pts, sindex.Grid); err != nil {
			return err
		}
		dSH, err := timed(func() error {
			var err error
			_, repS, err = cg.ConvexHullSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		dEnh, err := timed(func() error {
			var err error
			_, repE, err = cg.ConvexHullEnhanced(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		t.add(fmt.Sprintf("%d", n), ms(dSingle),
			ms(simDur(dHadoop, repH, cfg.Workers)),
			ms(simDur(dSH, repS, cfg.Workers)),
			ms(simDur(dEnh, repE, cfg.Workers)),
			fmt.Sprintf("%d", repE.Counters[cg.CounterIntermediatePoints]))
	}
	t.flush()
	return nil
}
