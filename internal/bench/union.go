package bench

import (
	"fmt"
	"math"

	"spatialhadoop/internal/mapreduce"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("fig21", "Polygon union: single vs Hadoop vs SHadoop vs enhanced, complex & simple polygons", runFig21)
}

// unionDataset builds the "complex" (overlapping many-vertex polygons) or
// "simple" (tessellation cells) union workloads of §10.1.
func unionDataset(kind string, n int, seed int64) []geom.Polygon {
	area := geom.NewRect(0, 0, 1e5, 1e5)
	switch kind {
	case "complex":
		// Overlapping 12-gons sized so neighbours overlap, like map areas.
		radius := 1e5 / (2 * math.Sqrt(float64(n)))
		return datagen.RandomPolygons(n, 12, radius*2.2, area, seed)
	default: // simple
		side := intSqrt(n)
		return datagen.Tessellation(side, side, area, seed)
	}
}

func intSqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	for s*s < n {
		s++
	}
	return s
}

func runFig21(cfg Config) error {
	for _, kind := range []string{"complex", "simple"} {
		fmt.Fprintf(cfg.W, "\n(%s polygons)\n", kind)
		t := newTable(cfg.W, "polygons", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)", "enhanced-sim(ms)",
			"merge-verts(hadoop)", "merge-verts(shadoop)", "best-speedup")
		for _, base := range []int{400, 800, 1600, 3200} {
			n := cfg.n(base)
			polys := unionDataset(kind, n, cfg.Seed)
			regions := make([]geom.Region, len(polys))
			for i, pg := range polys {
				regions[i] = geom.RegionOf(pg)
			}

			dSingle, err := timed(func() error {
				_, _ = cg.UnionSingle(polys)
				return nil
			})
			if err != nil {
				return err
			}

			sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
			if err := sys.LoadRegionsHeap("heap", regions); err != nil {
				return err
			}
			var repH, repS, repE *mapreduce.Report
			dHadoop, err := timed(func() error {
				var err error
				_, repH, err = cg.UnionHadoop(sys, "heap")
				return err
			})
			if err != nil {
				return err
			}

			if _, err := sys.LoadRegions("str", regions, sindex.STR); err != nil {
				return err
			}
			dSHadoop, err := timed(func() error {
				var err error
				_, repS, err = cg.UnionSHadoop(sys, "str")
				return err
			})
			if err != nil {
				return err
			}

			if _, err := sys.LoadRegions("grid", regions, sindex.Grid); err != nil {
				return err
			}
			dEnh, err := timed(func() error {
				var err error
				_, repE, err = cg.UnionEnhanced(sys, "grid")
				return err
			})
			if err != nil {
				return err
			}

			simH := simDur(dHadoop, repH, cfg.Workers)
			simS := simDur(dSHadoop, repS, cfg.Workers)
			simE := simDur(dEnh, repE, cfg.Workers)
			best := simH
			if simS < best {
				best = simS
			}
			if simE < best {
				best = simE
			}
			t.add(fmt.Sprintf("%d", len(polys)), ms(dSingle), ms(simH), ms(simS), ms(simE),
				fmt.Sprintf("%d", repH.Counters[cg.CounterIntermediatePoints]),
				fmt.Sprintf("%d", repS.Counters[cg.CounterIntermediatePoints]),
				speedup(dSingle, best))
		}
		t.flush()
	}
	fmt.Fprintln(cfg.W, "\nShape to match Fig. 21: enhanced < shadoop < hadoop for large inputs;")
	fmt.Fprintln(cfg.W, "the gap widens with size because random placement removes few interior edges.")
	return nil
}
