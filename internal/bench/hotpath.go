package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("hotpath", "Hot path: decoded-block cache, map-side partitioned shuffle", runHotpath)
}

// HotpathResult is one benchmark measurement of the hot-path suite.
type HotpathResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// Extra carries per-benchmark context (records decoded, pairs merged).
	Extra map[string]int64 `json:"extra,omitempty"`
}

// HotpathReport is the machine-readable perf baseline written as
// BENCH_hotpath.json: the raw measurements plus the derived speedups the
// acceptance criteria track. Baseline entries measure the pre-optimization
// strategy (re-parse per visit, sequential hash-per-pair merge) over the
// same data as their optimized counterparts.
type HotpathReport struct {
	Scale      float64         `json:"scale"`
	Workers    int             `json:"workers"`
	BlockSize  int64           `json:"block_size"`
	Seed       int64           `json:"seed"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Benchmarks []HotpathResult `json:"benchmarks"`
	// Derived speedups: optimized vs baseline, >1 is faster.
	Derived map[string]float64 `json:"derived"`
}

// runBench runs one testing.B body three times and records the fastest
// repetition, damping GC and scheduler noise (this simulated cluster often
// runs on small CI machines where a single repetition jitters by >10%).
func (r *HotpathReport) runBench(name string, extra map[string]int64, body func(b *testing.B)) {
	best := HotpathResult{Name: name, Extra: extra}
	for rep := 0; rep < 3; rep++ {
		res := testing.Benchmark(body)
		if ns := float64(res.NsPerOp()); best.Iters == 0 || ns < best.NsPerOp {
			best.Iters, best.NsPerOp = res.N, ns
		}
	}
	r.Benchmarks = append(r.Benchmarks, best)
}

// median returns the middle value of xs (sorted copy).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// nsOf returns the ns/op of a recorded benchmark.
func (r *HotpathReport) nsOf(name string) float64 {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b.NsPerOp
		}
	}
	return 0
}

// derive records the baseline/optimized ratio under the given key.
func (r *HotpathReport) derive(key, baseline, optimized string) {
	b, o := r.nsOf(baseline), r.nsOf(optimized)
	if o > 0 {
		r.Derived[key] = b / o
	}
}

// sequentialShuffleBaseline reproduces the pre-optimization pipeline end
// to end: every Emit appends to one flat per-task buffer, then the master
// runs one sequential loop over every emitted pair with a fresh stdlib
// FNV-1a hasher per key, grouping into per-reducer maps. It is kept here
// as the measured baseline the partitioned shuffle is compared against.
func sequentialShuffleBaseline(perTask [][]mapreduce.Pair, numRed int) []map[string][]string {
	// Emit stage: the old TaskContext buffered pairs in a single slice.
	emitted := make([][]mapreduce.Pair, len(perTask))
	for ti, pairs := range perTask {
		var buf []mapreduce.Pair
		for _, p := range pairs {
			buf = append(buf, p)
		}
		emitted[ti] = buf
	}
	// Merge stage: hash every pair on the master, one hasher each.
	groups := make([]map[string][]string, numRed)
	for i := range groups {
		groups[i] = make(map[string][]string)
	}
	for _, pairs := range emitted {
		for _, p := range pairs {
			h := fnv.New32a()
			h.Write([]byte(p.Key))
			g := groups[int(h.Sum32()%uint32(numRed))]
			g[p.Key] = append(g[p.Key], p.Value)
		}
	}
	return groups
}

// partitionedShuffle mirrors the optimized pipeline: every Emit hashes the
// key inline (allocation-free) and buckets the pair into its reducer's
// shard, then the master merges per reducer in parallel goroutines with no
// hashing left to do.
func partitionedShuffle(perTask [][]mapreduce.Pair, numRed int) []map[string][]string {
	// Emit stage: map-side bucketing, as the new TaskContext does.
	shardsByTask := make([][][]mapreduce.Pair, len(perTask))
	for ti, pairs := range perTask {
		shards := make([][]mapreduce.Pair, numRed)
		for _, p := range pairs {
			si := 0
			if numRed > 1 {
				const (
					offset32 = 2166136261
					prime32  = 16777619
				)
				h := uint32(offset32)
				for i := 0; i < len(p.Key); i++ {
					h ^= uint32(p.Key[i])
					h *= prime32
				}
				si = int(h % uint32(numRed))
			}
			shards[si] = append(shards[si], p)
		}
		shardsByTask[ti] = shards
	}
	// Merge stage: per-reducer concatenation, one goroutine each.
	groups := make([]map[string][]string, numRed)
	var wg sync.WaitGroup
	for ri := 0; ri < numRed; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			g := make(map[string][]string)
			for _, shards := range shardsByTask {
				for _, p := range shards[ri] {
					g[p.Key] = append(g[p.Key], p.Value)
				}
			}
			groups[ri] = g
		}(ri)
	}
	wg.Wait()
	return groups
}

// RunHotpath measures the hot-path suite at the given configuration and
// returns the report. It covers the three optimization axes end to end:
// record decode (uncached re-parse vs the block cache), the shuffle merge
// (sequential hash-per-pair vs map-side partitioned, at 1/4/16 reducers),
// and two whole operations (repeated range query, skyline) whose wall
// clock the caches compound into.
func RunHotpath(cfg Config) (*HotpathReport, error) {
	cfg = cfg.withDefaults()
	rep := &HotpathReport{
		Scale:      cfg.Scale,
		Workers:    cfg.Workers,
		BlockSize:  cfg.BlockSize,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Derived:    make(map[string]float64),
	}

	// ---- Decode: repeated-query visit over an indexed file ----
	n := cfg.n(200000)
	pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)
	sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
	f, err := sys.LoadPoints("pts", pts, sindex.STRPlus)
	if err != nil {
		return nil, err
	}
	splits := f.Splits()
	var records int64
	for _, s := range splits {
		records += int64(s.NumRecords())
	}
	decodeExtra := map[string]int64{"records": records, "splits": int64(len(splits))}
	// Baseline: what every map attempt used to pay — re-parse the text
	// records of every split on each visit.
	rep.runBench("decode/uncached", decodeExtra, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range splits {
				if _, err := geomio.DecodePoints(s.Records()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// Optimized: the decoded-block cache (first visit parses, the rest of
	// the run — retried attempts, later jobs of a pipeline — hit it).
	rep.runBench("decode/cached", decodeExtra, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range splits {
				if _, err := s.Points(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	rep.derive("decode_cached_speedup", "decode/uncached", "decode/cached")

	// ---- Shuffle merge at 1/4/16 reducers ----
	// The pair set mirrors a shuffle-heavy job: many tasks, skewed key
	// cardinality, short values.
	nTasks := cfg.Workers
	pairsPerTask := cfg.n(20000)
	perTask := make([][]mapreduce.Pair, nTasks)
	for ti := range perTask {
		pairs := make([]mapreduce.Pair, pairsPerTask)
		for i := range pairs {
			pairs[i] = mapreduce.Pair{
				Key:   fmt.Sprintf("cell-%04d", (ti*31+i)%512),
				Value: fmt.Sprintf("%d", i),
			}
		}
		perTask[ti] = pairs
	}
	totalPairs := int64(nTasks) * int64(pairsPerTask)
	// The two shuffle designs differ by ~10% on a single core (the parallel
	// merge only pays off with spare cores), which is within the drift of
	// two independent testing.Benchmark runs. Measure them interleaved —
	// alternating single iterations, comparing medians — so both sides see
	// the same GC and scheduler weather.
	const shuffleRounds = 75
	for _, numRed := range []int{1, 4, 16} {
		extra := map[string]int64{"pairs": totalPairs, "reducers": int64(numRed)}
		seqName := fmt.Sprintf("shuffle/sequential/r=%d", numRed)
		parName := fmt.Sprintf("shuffle/partitioned/r=%d", numRed)
		sequentialShuffleBaseline(perTask, numRed) // warm up both paths
		partitionedShuffle(perTask, numRed)
		runtime.GC() // start each comparison block from a clean heap
		seqNs := make([]float64, 0, shuffleRounds)
		parNs := make([]float64, 0, shuffleRounds)
		ratios := make([]float64, 0, shuffleRounds)
		timed := func(f func([][]mapreduce.Pair, int) []map[string][]string) float64 {
			runtime.GC() // collect the previous side's garbage outside the window
			t0 := time.Now()
			f(perTask, numRed)
			return float64(time.Since(t0))
		}
		for round := 0; round < shuffleRounds; round++ {
			var s, p float64
			if round%2 == 0 { // alternate order to cancel any ordering bias
				s = timed(sequentialShuffleBaseline)
				p = timed(partitionedShuffle)
			} else {
				p = timed(partitionedShuffle)
				s = timed(sequentialShuffleBaseline)
			}
			seqNs = append(seqNs, s)
			parNs = append(parNs, p)
			ratios = append(ratios, s/p)
		}
		rep.Benchmarks = append(rep.Benchmarks,
			HotpathResult{Name: seqName, Iters: shuffleRounds, NsPerOp: median(seqNs), Extra: extra},
			HotpathResult{Name: parName, Iters: shuffleRounds, NsPerOp: median(parNs), Extra: extra},
		)
		// The speedup is the median of per-round ratios, not the ratio of
		// medians: the two timings of one round share GC and scheduler
		// weather, so their ratio is far more stable than either median.
		rep.Derived[fmt.Sprintf("shuffle_speedup_r%d", numRed)] = median(ratios)
	}

	// ---- End-to-end: repeated range query on the warm system ----
	q := geom.NewRect(4e5, 4e5, 5e5, 5e5)
	if _, _, err := ops.RangeQueryPoints(sys, "pts", q); err != nil {
		return nil, err
	}
	rep.runBench("e2e/range-query-repeated", map[string]int64{"records": records}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ops.RangeQueryPoints(sys, "pts", q); err != nil {
				b.Fatal(err)
			}
		}
	})

	// ---- End-to-end: skyline (cold first run populates the cache) ----
	if _, _, err := cg.SkylineSHadoop(sys, "pts"); err != nil {
		return nil, err
	}
	rep.runBench("e2e/skyline-repeated", map[string]int64{"records": records}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cg.SkylineSHadoop(sys, "pts"); err != nil {
				b.Fatal(err)
			}
		}
	})

	return rep, nil
}

// WriteHotpathJSON runs the hot-path suite and writes the report to path.
func WriteHotpathJSON(cfg Config, path string) error {
	rep, err := RunHotpath(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// runHotpath is the table-printing experiment wrapper around RunHotpath.
func runHotpath(cfg Config) error {
	rep, err := RunHotpath(cfg)
	if err != nil {
		return err
	}
	t := newTable(cfg.W, "benchmark", "iters", "ms/op")
	for _, b := range rep.Benchmarks {
		t.add(b.Name, fmt.Sprintf("%d", b.Iters), fmt.Sprintf("%.3f", b.NsPerOp/1e6))
	}
	t.flush()
	fmt.Fprintln(cfg.W)
	dt := newTable(cfg.W, "derived", "speedup")
	for _, k := range []string{
		"decode_cached_speedup",
		"shuffle_speedup_r1", "shuffle_speedup_r4", "shuffle_speedup_r16",
	} {
		if v, ok := rep.Derived[k]; ok {
			dt.add(k, fmt.Sprintf("%.1fx", v))
		}
	}
	dt.flush()
	fmt.Fprintln(cfg.W, "\nExpected: cached decode orders of magnitude over re-parse; partitioned")
	fmt.Fprintln(cfg.W, "shuffle ahead of the sequential merge from 4 reducers up (r=1 has no")
	fmt.Fprintln(cfg.W, "parallelism to exploit, only the cheaper inline hash).")
	return nil
}
