package bench

import (
	"fmt"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("fig24", "Skyline on OSM-like data: runtime sweep + partitions processed", runFig24)
	register("fig25", "Skyline on SYNTH: four distributions", runFig25)
	register("fig26", "Output-sensitive skyline vs regular (incl. worst case)", runFig26)
}

func runFig24(cfg Config) error {
	t := newTable(cfg.W, "points", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)",
		"hadoop-parts", "shadoop-parts", "sh-speedup")
	for _, base := range []int{50000, 100000, 200000, 400000} {
		n := cfg.n(base)
		pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)

		dSingle, _ := timed(func() error {
			_ = cg.SkylineSingle(pts)
			return nil
		})

		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			return err
		}
		var repH *mapreduce.Report
		dHadoop, err := timed(func() error {
			var err error
			_, repH, err = cg.SkylineHadoop(sys, "heap")
			return err
		})
		if err != nil {
			return err
		}

		if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
			return err
		}
		var repS *mapreduce.Report
		dSH, err := timed(func() error {
			var err error
			_, repS, err = cg.SkylineSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		persistObs(cfg, fmt.Sprintf("fig24-skyline-hadoop-%d", n), repH)
		persistObs(cfg, fmt.Sprintf("fig24-skyline-shadoop-%d", n), repS)
		simH := simDur(dHadoop, repH, cfg.Workers)
		simS := simDur(dSH, repS, cfg.Workers)
		t.add(fmt.Sprintf("%d", n), ms(dSingle), ms(simH), ms(simS),
			fmt.Sprintf("%d", repH.Splits), fmt.Sprintf("%d", repS.Splits),
			speedup(dSingle, simS))
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nShape to match Fig. 24: Hadoop processes every partition (count grows with")
	fmt.Fprintln(cfg.W, "input); SpatialHadoop's filter holds the processed-partition count nearly flat.")
	return nil
}

func runFig25(cfg Config) error {
	t := newTable(cfg.W, "distribution", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)", "sh-speedup")
	n := cfg.n(200000)
	for _, dist := range []datagen.Distribution{
		datagen.Uniform, datagen.Gaussian, datagen.Correlated, datagen.ReverselyCorrelated,
	} {
		pts := datagen.Points(dist, n, benchArea, cfg.Seed)
		dSingle, _ := timed(func() error {
			_ = cg.SkylineSingle(pts)
			return nil
		})
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			return err
		}
		var repH, repS *mapreduce.Report
		dHadoop, err := timed(func() error {
			var err error
			_, repH, err = cg.SkylineHadoop(sys, "heap")
			return err
		})
		if err != nil {
			return err
		}
		if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
			return err
		}
		dSH, err := timed(func() error {
			var err error
			_, repS, err = cg.SkylineSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		simH := simDur(dHadoop, repH, cfg.Workers)
		simS := simDur(dSH, repS, cfg.Workers)
		t.add(dist.String(), ms(dSingle), ms(simH), ms(simS), speedup(dSingle, simS))
	}
	t.flush()
	return nil
}

func runFig26(cfg Config) error {
	for _, dist := range []datagen.Distribution{
		datagen.Uniform, datagen.Gaussian, datagen.ReverselyCorrelated,
	} {
		fmt.Fprintf(cfg.W, "\n(%s)\n", dist)
		t := newTable(cfg.W, "points", "regular-sim(ms)", "output-sensitive-sim(ms)", "skyline-size")
		for _, base := range []int{50000, 100000, 200000} {
			n := cfg.n(base)
			pts := datagen.Points(dist, n, benchArea, cfg.Seed)
			sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
			if _, err := sys.LoadPoints("idx", pts, sindex.Grid); err != nil {
				return err
			}
			var skySize int
			var repR, repO *mapreduce.Report
			dReg, err := timed(func() error {
				sky, rep, err := cg.SkylineSHadoop(sys, "idx")
				skySize, repR = len(sky), rep
				return err
			})
			if err != nil {
				return err
			}
			dOS, err := timed(func() error {
				var err error
				_, repO, err = cg.SkylineOutputSensitive(sys, "idx", true)
				return err
			})
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("%d", n), ms(simDur(dReg, repR, cfg.Workers)),
				ms(simDur(dOS, repO, cfg.Workers)), fmt.Sprintf("%d", skySize))
		}
		t.flush()
	}
	fmt.Fprintln(cfg.W, "\nShape to match Fig. 26: comparable on uniform/Gaussian (tiny output); on the")
	fmt.Fprintln(cfg.W, "reversely-correlated worst case the output-sensitive algorithm scales while")
	fmt.Fprintln(cfg.W, "the regular one funnels the huge skyline through a single machine.")
	return nil
}
