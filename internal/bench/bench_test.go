package bench

import (
	"io"
	"strings"
	"testing"
)

// TestRegistryCoversEvaluation checks every table/figure of the paper's
// evaluation has a registered experiment.
func TestRegistryCoversEvaluation(t *testing.T) {
	want := []string{
		"table1", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
		"fig26", "fig27", "fig28", "fig29", "fig30", "fig31", "sigmod14",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.Name] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("missing experiment %q", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Config{W: io.Discard}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// TestTinyExperimentRuns smoke-runs a small experiment end to end and
// checks the table output shape.
func TestTinyExperimentRuns(t *testing.T) {
	var out strings.Builder
	cfg := Config{Scale: 0.02, Workers: 4, BlockSize: 32 << 10, Seed: 1, W: &out}
	if err := Run("fig24", cfg); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, col := range []string{"points", "single(ms)", "shadoop-sim(ms)", "sh-speedup"} {
		if !strings.Contains(text, col) {
			t.Errorf("output missing column %q", col)
		}
	}
	if strings.Count(text, "\n") < 6 {
		t.Errorf("output too short:\n%s", text)
	}
}

func TestTablePrinterAlignment(t *testing.T) {
	var out strings.Builder
	tb := newTable(&out, "a", "bbbb")
	tb.add("xxxxxx", "y")
	tb.flush()
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator not aligned with header: %q vs %q", lines[0], lines[1])
	}
}
