// Package bench implements the evaluation harness: one experiment per
// table and figure of the paper's evaluation section (§10). Each
// experiment generates its workload, runs every algorithm variant the
// paper compares, and prints the same rows/series the paper plots —
// runtimes per input size, partitions processed, fraction of records
// pruned. Absolute numbers reflect the simulated cluster, but the shapes
// (who wins, by what factor, where variants fail or flatten) mirror the
// paper.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/mapreduce"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every dataset size; 1.0 is the laptop-sized default.
	Scale float64
	// Workers is the simulated cluster size (default 25, as in the paper).
	Workers int
	// BlockSize is the DFS block capacity driving the partition count.
	BlockSize int64
	// Seed makes runs reproducible.
	Seed int64
	// W receives the result tables.
	W io.Writer
	// ObsDir, when non-empty, receives per-job observability artifacts:
	// <name>.trace.jsonl (the span log) and <name>.metrics.json (the
	// metrics snapshot) for the jobs the experiments persist.
	ObsDir string
	// Chaos is the seeded fault plan installed on every system the
	// experiments stand up; a disabled plan injects nothing. Because
	// injection is deterministic and retried work is idempotent, results
	// match the fault-free run — only the timings change.
	Chaos fault.Plan
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = 25
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// n scales a dataset size.
func (c Config) n(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) error
}

// registry of all experiments, populated by the per-figure files.
var registry []Experiment

func register(name, title string, run func(Config) error) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// Experiments returns all registered experiments sorted by name.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes the named experiment ("all" runs every one).
func Run(name string, cfg Config) error {
	cfg = cfg.withDefaults()
	if name == "all" {
		for _, e := range Experiments() {
			fmt.Fprintf(cfg.W, "\n================ %s — %s ================\n", e.Name, e.Title)
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("bench %s: %w", e.Name, err)
			}
		}
		return nil
	}
	for _, e := range registry {
		if e.Name == name {
			fmt.Fprintf(cfg.W, "\n================ %s — %s ================\n", e.Name, e.Title)
			return e.Run(cfg)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (try \"all\")", name)
}

// table is a tiny fixed-width table printer.
type table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, header: header}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(t.w, "  ")
			}
			fmt.Fprintf(t.w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(t.w)
	}
	printRow(t.header)
	for i, w := range widths {
		if i > 0 {
			fmt.Fprint(t.w, "  ")
		}
		for j := 0; j < w; j++ {
			fmt.Fprint(t.w, "-")
		}
	}
	fmt.Fprintln(t.w)
	for _, r := range t.rows {
		printRow(r)
	}
}

// persistObs writes a job's trace and metrics snapshot into cfg.ObsDir,
// so a benchmark run leaves per-task evidence next to its timing tables.
// It is a no-op without -obsdir; persistence failures are reported on the
// result writer but do not fail the experiment.
func persistObs(cfg Config, name string, rep *mapreduce.Report) {
	if cfg.ObsDir == "" || rep == nil || rep.Trace == nil {
		return
	}
	fail := func(err error) { fmt.Fprintf(cfg.W, "obs: %s: %v\n", name, err) }
	if err := os.MkdirAll(cfg.ObsDir, 0o755); err != nil {
		fail(err)
		return
	}
	tf, err := os.Create(filepath.Join(cfg.ObsDir, name+".trace.jsonl"))
	if err != nil {
		fail(err)
		return
	}
	if err := rep.Trace.WriteJSONL(tf); err == nil {
		err = tf.Close()
		if err != nil {
			fail(err)
		}
	} else {
		tf.Close()
		fail(err)
	}
	if rep.Metrics != nil {
		data, err := json.MarshalIndent(rep.Metrics, "", "  ")
		if err != nil {
			fail(err)
			return
		}
		if err := os.WriteFile(filepath.Join(cfg.ObsDir, name+".metrics.json"), data, 0o644); err != nil {
			fail(err)
		}
	}
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// ms formats a duration in milliseconds for the tables.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// simDur estimates what a distributed run would take on the configured
// cluster: the job's LPT makespan plus whatever the caller spent outside
// the job (master-side post-processing such as the Voronoi H-merge).
func simDur(wall time.Duration, rep *mapreduce.Report, workers int) time.Duration {
	master := wall - rep.Total
	if master < 0 {
		master = 0
	}
	return rep.SimulatedParallel(workers) + master
}

// speedup formats base/other as "12.3x".
func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}
