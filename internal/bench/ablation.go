package bench

import (
	"fmt"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/voronoi"
)

func init() {
	register("ablation-filter", "Ablation: skyline/hull filter step on vs off", runAblationFilter)
	register("ablation-vd-frontier", "Ablation: Voronoi pruning-rule frontier optimization", runAblationVDFrontier)
	register("ablation-partitioner", "Ablation: partitioning technique per operation", runAblationPartitioner)
	register("ablation-sky-comm", "Ablation: Theorem-4 SKY broadcast reduction (Appendix B)", runAblationSkyComm)
}

// runAblationSkyComm measures the communication optimization of paper
// Appendix B: shipping the full dominance-power set SKY to every task is
// O(|G|^2) points, while the per-cell subset SKY(c) caps it at 4 per task.
func runAblationSkyComm(cfg Config) error {
	t := newTable(cfg.W, "partitions", "sky-points-shipped(full)", "sky-points-shipped(reduced)", "saving%")
	for _, base := range []int{100000, 200000, 400000} {
		n := cfg.n(base)
		// The anti-correlated worst case: the skyline (and hence SKY) is
		// large and the filter step cannot prune partitions.
		pts := datagen.Points(datagen.ReverselyCorrelated, n, benchArea, cfg.Seed)
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		f, err := sys.LoadPoints("idx", pts, sindex.Grid)
		if err != nil {
			return err
		}
		var full, reduced int64
		for _, mode := range []bool{false, true} {
			_, rep, err := cg.SkylineOutputSensitive(sys, "idx", mode)
			if err != nil {
				return err
			}
			if mode {
				reduced = rep.Counters["cg.sky.points.shipped"]
			} else {
				full = rep.Counters["cg.sky.points.shipped"]
			}
		}
		saving := "-"
		if full > 0 {
			saving = fmt.Sprintf("%.1f", 100*(1-float64(reduced)/float64(full)))
		}
		t.add(fmt.Sprintf("%d", len(f.Index.Cells)),
			fmt.Sprintf("%d", full), fmt.Sprintf("%d", reduced), saving)
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nTheorem 4 bounds the per-task broadcast at 4 points, turning the O(|G|^2)")
	fmt.Fprintln(cfg.W, "total into O(|G|); the saving grows with the partition count.")
	return nil
}

// runAblationFilter quantifies the filter step's contribution by running
// the indexed skyline and hull jobs with and without it.
func runAblationFilter(cfg Config) error {
	n := cfg.n(200000)
	pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)
	sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
	if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
		return err
	}
	t := newTable(cfg.W, "operation", "filter", "time(ms)", "partitions")
	// SkylineHadoop on the indexed file runs the identical job minus the
	// filter function, which is exactly the ablation.
	var rep *mapreduce.Report
	d, err := timed(func() error {
		var err error
		_, rep, err = cg.SkylineHadoop(sys, "idx")
		return err
	})
	if err != nil {
		return err
	}
	t.add("skyline", "off", ms(d), fmt.Sprintf("%d", rep.Splits))
	d, err = timed(func() error {
		var err error
		_, rep, err = cg.SkylineSHadoop(sys, "idx")
		return err
	})
	if err != nil {
		return err
	}
	t.add("skyline", "on", ms(d), fmt.Sprintf("%d", rep.Splits))

	d, err = timed(func() error {
		var err error
		_, rep, err = cg.ConvexHullHadoop(sys, "idx")
		return err
	})
	if err != nil {
		return err
	}
	t.add("convexhull", "off", ms(d), fmt.Sprintf("%d", rep.Splits))
	d, err = timed(func() error {
		var err error
		_, rep, err = cg.ConvexHullSHadoop(sys, "idx")
		return err
	})
	if err != nil {
		return err
	}
	t.add("convexhull", "on", ms(d), fmt.Sprintf("%d", rep.Splits))
	t.flush()
	return nil
}

// runAblationVDFrontier measures how many dangerous-zone evaluations the
// boundary-BFS optimization of §5.2 saves over testing every region.
func runAblationVDFrontier(cfg Config) error {
	t := newTable(cfg.W, "sites", "regions-tested(direct)", "regions-tested(frontier)", "saving%")
	part := benchArea
	for _, base := range []int{20000, 40000, 80000} {
		n := cfg.n(base)
		pts := datagen.Points(datagen.Uniform, n, part, cfg.Seed)
		vd := voronoi.New(pts)
		_, apps := vd.SafeSitesFrontier(part)
		t.add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", n), fmt.Sprintf("%d", apps),
			fmt.Sprintf("%.1f", 100*(1-float64(apps)/float64(n))))
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nThe paper reports the rule applied on only 7K of 1.4M regions; the frontier")
	fmt.Fprintln(cfg.W, "walk touches only the boundary band, so the saving grows with density.")
	return nil
}

// runAblationPartitioner compares partitioning techniques per operation
// (the design-space question behind Table 1).
func runAblationPartitioner(cfg Config) error {
	n := cfg.n(100000)
	pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)
	t := newTable(cfg.W, "technique", "skyline(ms)", "hull(ms)", "closest(ms)")
	for _, tech := range []sindex.Technique{sindex.Grid, sindex.STRPlus, sindex.QuadTree, sindex.KDTree} {
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if _, err := sys.LoadPoints("idx", pts, tech); err != nil {
			return err
		}
		dSky, err := timed(func() error {
			_, _, err := cg.SkylineSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		dHull, err := timed(func() error {
			_, _, err := cg.ConvexHullSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		dCP, err := timed(func() error {
			_, _, err := cg.ClosestPairSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		t.add(tech.String(), ms(dSky), ms(dHull), ms(dCP))
	}
	t.flush()
	return nil
}
