package bench

import (
	"fmt"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("fig22", "Voronoi diagram on OSM-like data: runtime sweep + pruning power", runFig22)
	register("fig23", "Voronoi diagram on SYNTH (uniform, Gaussian)", runFig23)
	register("ext-delaunay", "Extension: Delaunay triangulation with safe-triangle flushing", runExtDelaunay)
}

// runExtDelaunay benchmarks the Delaunay triangulation extension: the same
// dangerous-zone machinery as the Voronoi operation, flushing triangles
// whose vertices are all safe.
func runExtDelaunay(cfg Config) error {
	t := newTable(cfg.W, "sites", "single(ms)", "shadoop-sim(ms)", "speedup", "flushed-early%")
	for _, base := range []int{10000, 20000, 40000, 80000} {
		n := cfg.n(base)
		pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)
		var nTris int
		dSingle, err := timed(func() error {
			nTris = len(cg.DelaunaySingle(pts))
			return nil
		})
		if err != nil {
			return err
		}
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if _, err := sys.LoadPoints("dt", pts, sindex.STRPlus); err != nil {
			return err
		}
		var rep *mapreduce.Report
		wall, err := timed(func() error {
			var err error
			_, rep, err = cg.DelaunaySHadoop(sys, "dt")
			return err
		})
		if err != nil {
			return err
		}
		sim := simDur(wall, rep, cfg.Workers)
		t.add(fmt.Sprintf("%d", n), ms(dSingle), ms(sim), speedup(dSingle, sim),
			fmt.Sprintf("%.1f", 100*float64(rep.Counters[cg.CounterFlushedEarly])/float64(nTris)))
	}
	t.flush()
	return nil
}

var benchArea = geom.NewRect(0, 0, 1e6, 1e6)

func runVoronoiSweep(cfg Config, dist datagen.Distribution, sizes []int, showPruning bool) error {
	t := newTable(cfg.W, "sites", "single(ms)", "shadoop-sim(ms)", "speedup", "carried-local%", "carried-vmerge%")
	for _, base := range sizes {
		n := cfg.n(base)
		pts := datagen.Points(dist, n, benchArea, cfg.Seed)

		dSingle, err := timed(func() error {
			_ = cg.VoronoiSingle(pts, benchArea)
			return nil
		})
		if err != nil {
			return err
		}

		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if _, err := sys.LoadPoints("vd", pts, sindex.STRPlus); err != nil {
			return err
		}
		var stats *cg.VoronoiStats
		var rep *mapreduce.Report
		wall, err := timed(func() error {
			var err error
			_, rep, stats, err = cg.VoronoiSHadoop(sys, "vd")
			return err
		})
		if err != nil {
			return err
		}
		dSH := simDur(wall, rep, cfg.Workers)
		t.add(
			fmt.Sprintf("%d", n),
			ms(dSingle), ms(dSH), speedup(dSingle, dSH),
			fmt.Sprintf("%.2f", 100*float64(stats.CarriedAfterLocal)/float64(n)),
			fmt.Sprintf("%.2f", 100*float64(stats.CarriedAfterVMerge)/float64(n)),
		)
	}
	t.flush()
	if showPruning {
		fmt.Fprintln(cfg.W, "\nShape to match Fig. 22b: the local VD step prunes the vast majority of")
		fmt.Fprintln(cfg.W, "sites; the V-merge step leaves only a small boundary fraction for H-merge.")
	}
	return nil
}

func runFig22(cfg Config) error {
	return runVoronoiSweep(cfg, datagen.Clustered, []int{10000, 20000, 40000, 80000}, true)
}

func runFig23(cfg Config) error {
	fmt.Fprintln(cfg.W, "\n(uniform)")
	if err := runVoronoiSweep(cfg, datagen.Uniform, []int{10000, 20000, 40000, 80000}, false); err != nil {
		return err
	}
	fmt.Fprintln(cfg.W, "\n(gaussian)")
	return runVoronoiSweep(cfg, datagen.Gaussian, []int{10000, 20000, 40000, 80000}, false)
}
