package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/worker"
)

// serveCorpus loads the serving workload (an indexed points file plus two
// region files for join) into a fresh system.
func serveCorpus(cfg Config) (*core.System, error) {
	sys := core.New(core.Config{Workers: cfg.Workers, BlockSize: cfg.BlockSize, Seed: cfg.Seed, Fault: cfg.Chaos})
	area := geom.NewRect(0, 0, 1_000_000, 1_000_000)
	pts := datagen.Points(datagen.Clustered, cfg.n(60_000), area, cfg.Seed)
	if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		return nil, err
	}
	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	if _, err := sys.LoadRegions("a", toRegions(datagen.Tessellation(6, 6, area, cfg.Seed+1)), sindex.Grid); err != nil {
		return nil, err
	}
	if _, err := sys.LoadRegions("b", toRegions(datagen.Tessellation(5, 5, area, cfg.Seed+2)), sindex.Grid); err != nil {
		return nil, err
	}
	return sys, nil
}

// serveLoadQueries is the load query pool. It is deliberately larger
// than the load server's result cache, so the steady state mixes cache
// hits with real job executions — the latency trajectory then reflects
// query execution under admission, not just the cache fast path. The
// second return value marks the selective range-query mix (the pan and
// diagonal windows), whose latency the memory tier is designed to cut:
// those queries get their own quantiles in the report.
func serveLoadQueries() ([]string, map[string]bool) {
	qs := []string{
		"/rangequery?file=pts&rect=0,0,1000000,1000000",
		"/knn?file=pts&point=500000,500000&k=10",
		"/knn?file=pts&point=123456,654321&k=25",
		"/knn?file=pts&point=900000,100000&k=5",
		"/join?left=a&right=b",
		"/plot?file=pts&width=64&height=64",
		"/plot?file=pts&width=48&height=48",
	}
	selective := map[string]bool{}
	// A 4x3 pan of mid-size windows plus a diagonal of small hot windows.
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			x, y := i*200_000, j*250_000
			q := fmt.Sprintf("/rangequery?file=pts&rect=%d,%d,%d,%d", x, y, x+350_000, y+400_000)
			qs = append(qs, q)
			selective[q] = true
		}
	}
	for i := 0; i < 5; i++ {
		o := 100_000 + i*150_000
		q := fmt.Sprintf("/rangequery?file=pts&rect=%d,%d,%d,%d", o, o, o+90_000, o+90_000)
		qs = append(qs, q)
		selective[q] = true
	}
	return qs, selective
}

// serveLoadCacheSize keeps the result cache well below the query-pool
// size so LRU churn sustains a mixed hit/miss steady state.
const serveLoadCacheSize = 8

// ServeLevel is the measurement at one concurrency level of the serving
// load benchmark.
type ServeLevel struct {
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_s"`
	Requests  int64   `json:"requests"`
	Failures  int64   `json:"failures"`
	QPS       float64 `json:"qps"`
	P50US     int64   `json:"p50_us"`
	P99US     int64   `json:"p99_us"`
	// Engine tags non-default levels: "" is the main mixed-planner ladder
	// (so old baselines keep matching), "sharded" the scatter/gather level
	// driven over serve-capable workers.
	Engine string `json:"engine,omitempty"`
	// Cache and engine mix, classified client-side from the X-Cache and
	// X-Engine response headers: hits and coalesced followers never ran a
	// query; the engine split covers only real executions.
	CacheHits       int64   `json:"cache_hits"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Coalesced       int64   `json:"coalesced"`
	EngineLocal     int64   `json:"engine_local"`
	EngineMapreduce int64   `json:"engine_mapreduce"`
	EngineSharded   int64   `json:"engine_sharded,omitempty"`
	// Quantiles restricted to the selective range-query mix (the pan and
	// diagonal windows), the workload class the memory tier targets.
	SelectiveP50US int64 `json:"selective_p50_us"`
	SelectiveP99US int64 `json:"selective_p99_us"`
}

// ServeBench is the machine-readable serving-latency trajectory written
// as BENCH_serve.json: oracle-checked QPS and exact p50/p99 per
// concurrency level over one warmed server.
type ServeBench struct {
	Scale      float64      `json:"scale"`
	Workers    int          `json:"workers"`
	BlockSize  int64        `json:"block_size"`
	Seed       int64        `json:"seed"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Levels     []ServeLevel `json:"levels"`
}

// serveLoadLevels derives the concurrency ladder from the -clients flag:
// a light level, the requested level and a 2x overload level.
func serveLoadLevels(clients int) []int {
	levels := []int{clients / 4, clients, clients * 2}
	if levels[0] < 1 {
		levels[0] = 1
	}
	var out []int
	for _, l := range levels {
		if len(out) == 0 || out[len(out)-1] != l {
			out = append(out, l)
		}
	}
	return out
}

// ServeLoad is the serving-layer load benchmark and smoke: it stands up
// an in-process HTTP server, records each query's serial answer as an
// oracle, then drives the mix at several concurrency levels for the
// given total duration. Any non-200 response or any body diverging from
// its oracle fails the run; on success it reports QPS and exact p50/p99
// per level, written to jsonPath when set. When baselinePath names a
// previous report, the run fails if any level's p99 regresses more than
// 3x against the matching level. CI runs this for 30s per push.
func ServeLoad(cfg Config, d time.Duration, clients int, jsonPath, baselinePath string) error {
	cfg = cfg.withDefaults()
	if clients < 1 {
		clients = 8
	}
	sys, err := serveCorpus(cfg)
	if err != nil {
		return err
	}
	srv := serve.New(sys, serve.Config{
		CacheSize:   serveLoadCacheSize,
		MaxInFlight: 4,
		QueueDepth:  4096,
		JobDeadline: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 60 * time.Second}

	// getBuf reads one response, reusing buf across requests: io.ReadAll's
	// doubling growth on the larger bodies showed up in the load
	// generator's own CPU profile, and the generator shares the server's
	// core. The returned body aliases buf — consume it before the next
	// call on the same buffer.
	getBuf := func(baseURL, q string, buf []byte) (int, []byte, []byte, http.Header, error) {
		resp, err := client.Get(baseURL + q)
		if err != nil {
			return 0, nil, buf, nil, err
		}
		defer resp.Body.Close()
		if n := resp.ContentLength; n >= 0 {
			if int64(cap(buf)) < n {
				buf = make([]byte, n+n/4)
			}
			body := buf[:n]
			if _, err = io.ReadFull(resp.Body, body); err != nil {
				return resp.StatusCode, nil, buf, resp.Header, err
			}
			return resp.StatusCode, body, buf, resp.Header, nil
		}
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, buf, resp.Header, err
	}
	get := func(q string) (int, []byte, http.Header, error) {
		code, body, _, hdr, err := getBuf(base, q, nil)
		return code, body, hdr, err
	}

	// Serial oracle pass.
	queries, selective := serveLoadQueries()
	oracle := make(map[string][]byte, len(queries))
	for _, q := range queries {
		code, body, _, err := get(q)
		if err != nil {
			return fmt.Errorf("oracle %s: %v", q, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("oracle %s: status %d: %s", q, code, body)
		}
		oracle[q] = body
	}

	levels := serveLoadLevels(clients)
	// One extra level at the end: the sharded engine over its own cluster.
	levelDur := d / time.Duration(len(levels)+1)
	report := &ServeBench{
		Scale:      cfg.Scale,
		Workers:    cfg.Workers,
		BlockSize:  cfg.BlockSize,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// measure drives one concurrency level against baseURL and appends it
	// to the report; every body is checked against the serial oracle, so a
	// level under any engine is a correctness gate too.
	measure := func(baseURL string, li, nclients int, engine string) error {
		var total, failures atomic.Int64
		var firstErr atomic.Value
		type clientTally struct {
			lats, selLats                                     []float64
			cacheHits, coalesced, engLocal, engMR, engSharded int64
		}
		tallies := make([]clientTally, nclients)
		deadline := time.Now().Add(levelDur)
		var wg sync.WaitGroup
		for c := 0; c < nclients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				ct := &tallies[c]
				rng := rand.New(rand.NewSource(cfg.Seed + int64(li*1000+c)))
				var buf []byte
				for time.Now().Before(deadline) {
					q := queries[rng.Intn(len(queries))]
					t0 := time.Now()
					var code int
					var body []byte
					var hdr http.Header
					var err error
					code, body, buf, hdr, err = getBuf(baseURL, q, buf)
					lat := float64(time.Since(t0).Microseconds())
					ct.lats = append(ct.lats, lat)
					if selective[q] {
						ct.selLats = append(ct.selLats, lat)
					}
					total.Add(1)
					switch hdr.Get("X-Cache") {
					case "hit":
						ct.cacheHits++
					case "coalesced":
						ct.coalesced++
					default:
						switch hdr.Get("X-Engine") {
						case serve.PlannerLocal:
							ct.engLocal++
						case serve.PlannerMapReduce:
							ct.engMR++
						case serve.PlannerSharded:
							ct.engSharded++
						}
					}
					switch {
					case err != nil:
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("%s: %v", q, err))
					case code != http.StatusOK:
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("%s: status %d: %.200s", q, code, body))
					case !bytes.Equal(body, oracle[q]):
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("%s: body diverged from serial oracle", q))
					}
				}
			}(c)
		}
		wg.Wait()

		var all, sel []float64
		lvl := ServeLevel{
			Clients:   nclients,
			DurationS: levelDur.Seconds(),
			Requests:  total.Load(),
			Failures:  failures.Load(),
			QPS:       float64(total.Load()) / levelDur.Seconds(),
			Engine:    engine,
		}
		for _, ct := range tallies {
			all = append(all, ct.lats...)
			sel = append(sel, ct.selLats...)
			lvl.CacheHits += ct.cacheHits
			lvl.Coalesced += ct.coalesced
			lvl.EngineLocal += ct.engLocal
			lvl.EngineMapreduce += ct.engMR
			lvl.EngineSharded += ct.engSharded
		}
		lvl.P50US = int64(obs.ExactQuantile(all, 0.5))
		lvl.P99US = int64(obs.ExactQuantile(all, 0.99))
		if len(sel) > 0 {
			lvl.SelectiveP50US = int64(obs.ExactQuantile(sel, 0.5))
			lvl.SelectiveP99US = int64(obs.ExactQuantile(sel, 0.99))
		}
		if lvl.Requests > 0 {
			lvl.CacheHitRate = float64(lvl.CacheHits) / float64(lvl.Requests)
		}
		report.Levels = append(report.Levels, lvl)
		tag := ""
		if engine != "" {
			tag = " engine=" + engine
		}
		fmt.Fprintf(cfg.W, "serveload:%s clients=%d requests=%d (%.1f req/s) p50=%dus p99=%dus selective_p99=%dus hit_rate=%.2f coalesced=%d local=%d mapreduce=%d sharded=%d failures=%d\n",
			tag, lvl.Clients, lvl.Requests, lvl.QPS, lvl.P50US, lvl.P99US, lvl.SelectiveP99US,
			lvl.CacheHitRate, lvl.Coalesced, lvl.EngineLocal, lvl.EngineMapreduce, lvl.EngineSharded, lvl.Failures)
		if n := failures.Load(); n > 0 {
			return fmt.Errorf("serveload: %d/%d requests failed at %d clients%s; first: %v",
				n, total.Load(), nclients, tag, firstErr.Load())
		}
		if total.Load() == 0 {
			return fmt.Errorf("serveload: no requests completed at %d clients within %v", nclients, levelDur)
		}
		return nil
	}

	for li, nclients := range levels {
		if err := measure(base, li, nclients, ""); err != nil {
			return err
		}
	}

	// Sharded-engine level: the same corpus behind a forced-sharded server
	// whose cluster runs two serve-capable goroutine workers at replication
	// 2 — range and kNN scatter to replica holders, join and plot take
	// their usual engines. Bodies are held to the same serial oracle, so
	// the level doubles as a byte-identity gate for the scatter path.
	shSys, err := serveCorpus(cfg)
	if err != nil {
		return err
	}
	m, err := shSys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		Lease:          200 * time.Millisecond,
		Metrics:        shSys.Metrics(),
		Replication:    2,
	})
	if err != nil {
		return err
	}
	defer m.Stop()
	for i := 0; i < 2; i++ {
		w, err := worker.Start(worker.Config{Master: m.Addr(), Tasks: 2, FakePID: 9300 + i, ServeTasks: true})
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	for waited := 0; m.LiveWorkers() < 2; waited++ {
		if waited > 5000 {
			return fmt.Errorf("serveload: serve workers never registered")
		}
		time.Sleep(time.Millisecond)
	}
	shSrv := serve.New(shSys, serve.Config{
		CacheSize:   serveLoadCacheSize,
		MaxInFlight: 4,
		QueueDepth:  4096,
		JobDeadline: 30 * time.Second,
		Planner:     serve.PlannerSharded,
	})
	shLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go shSrv.Serve(shLn)
	if err := measure("http://"+shLn.Addr().String(), len(levels), clients, serve.PlannerSharded); err != nil {
		return err
	}

	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(cfg.W, "serveload: cache hits=%d misses=%d evictions=%d\n",
		snap.Counters[serve.CounterCacheHits], snap.Counters[serve.CounterCacheMisses], snap.Counters[serve.CounterCacheEvictions])

	if jsonPath != "" {
		body, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.W, "serveload: wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		baseBody, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("serveload: read baseline: %w", err)
		}
		var baseline ServeBench
		if err := json.Unmarshal(baseBody, &baseline); err != nil {
			return fmt.Errorf("serveload: parse baseline %s: %w", baselinePath, err)
		}
		if err := CompareServeBench(report, &baseline); err != nil {
			return err
		}
		fmt.Fprintf(cfg.W, "serveload: p99 within 3x of baseline %s\n", baselinePath)
	}
	return nil
}

// CompareServeBench gates a serve benchmark against a checked-in
// baseline: any concurrency level whose p99 exceeds 3x the baseline's
// matching level fails. Levels are matched on (clients, engine) — the
// engine tag is "" for the main ladder, so baselines written before the
// sharded level existed still match it — and levels without a baseline
// counterpart pass (the ladder may change shape across PRs).
func CompareServeBench(cur, base *ServeBench) error {
	type levelKey struct {
		clients int
		engine  string
	}
	byKey := make(map[levelKey]ServeLevel, len(base.Levels))
	for _, l := range base.Levels {
		byKey[levelKey{l.Clients, l.Engine}] = l
	}
	for _, l := range cur.Levels {
		b, ok := byKey[levelKey{l.Clients, l.Engine}]
		if !ok || b.P99US <= 0 {
			continue
		}
		if l.P99US > 3*b.P99US {
			return fmt.Errorf("serveload: p99 regression at %d clients (engine %q): %dus > 3x baseline %dus",
				l.Clients, l.Engine, l.P99US, b.P99US)
		}
	}
	return nil
}

// The concurrency experiment quantifies the serving layer's point: with a
// shared slot pool and admission control, running J independent queries
// concurrently costs about the same total work as running them serially,
// but the wall-clock drops because master-side gaps (filter, commit,
// result readback) of one job overlap the map work of another — while
// the worker cap keeps the task concurrency at the cluster size either
// way.
func init() {
	register("concurrency", "Concurrent query throughput under shared admission (serving layer)", func(cfg Config) error {
		sys, err := serveCorpus(cfg)
		if err != nil {
			return err
		}
		queries := []geom.Rect{
			geom.NewRect(100_000, 100_000, 400_000, 400_000),
			geom.NewRect(250_000, 250_000, 750_000, 750_000),
			geom.NewRect(600_000, 100_000, 900_000, 500_000),
			geom.NewRect(50_000, 550_000, 450_000, 950_000),
			geom.NewRect(300_000, 300_000, 700_000, 700_000),
			geom.NewRect(0, 0, 1_000_000, 1_000_000),
		}
		runOne := func(i int, out string) error {
			_, _, err := ops.RangeQueryPointsTo(sys, "pts", queries[i%len(queries)], out)
			return err
		}

		const jobs = 12
		t := newTable(cfg.W, "mode", "jobs", "wall ms", "jobs/s", "speedup")

		serialDur, err := timed(func() error {
			for i := 0; i < jobs; i++ {
				if err := runOne(i, fmt.Sprintf("serial.out%d", i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.add("serial", fmt.Sprint(jobs), ms(serialDur), fmt.Sprintf("%.1f", float64(jobs)/serialDur.Seconds()), "1.0x")

		for _, inflight := range []int{2, 4} {
			sys.Cluster().SetAdmission(mapreduce.AdmissionConfig{MaxInFlight: inflight, QueueDepth: jobs})
			concDur, err := timed(func() error {
				var wg sync.WaitGroup
				errs := make([]error, jobs)
				for i := 0; i < jobs; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						errs[i] = runOne(i, fmt.Sprintf("conc%d.out%d", inflight, i))
					}(i)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("concurrent(x%d)", inflight), fmt.Sprint(jobs), ms(concDur),
				fmt.Sprintf("%.1f", float64(jobs)/concDur.Seconds()), speedup(serialDur, concDur))
		}
		t.flush()
		fmt.Fprintf(cfg.W, "slot pool: cap=%d high-water=%d (cap never exceeded)\n",
			sys.Cluster().Slots().Cap(), sys.Cluster().Slots().HighWater())
		return nil
	})
}
