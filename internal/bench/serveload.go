package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
)

// serveCorpus loads the serving workload (an indexed points file plus two
// region files for join) into a fresh system.
func serveCorpus(cfg Config) (*core.System, error) {
	sys := core.New(core.Config{Workers: cfg.Workers, BlockSize: cfg.BlockSize, Seed: cfg.Seed, Fault: cfg.Chaos})
	area := geom.NewRect(0, 0, 1_000_000, 1_000_000)
	pts := datagen.Points(datagen.Clustered, cfg.n(60_000), area, cfg.Seed)
	if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		return nil, err
	}
	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	if _, err := sys.LoadRegions("a", toRegions(datagen.Tessellation(6, 6, area, cfg.Seed+1)), sindex.Grid); err != nil {
		return nil, err
	}
	if _, err := sys.LoadRegions("b", toRegions(datagen.Tessellation(5, 5, area, cfg.Seed+2)), sindex.Grid); err != nil {
		return nil, err
	}
	return sys, nil
}

// serveLoadQueries is the load-smoke query mix.
func serveLoadQueries() []string {
	return []string{
		"/rangequery?file=pts&rect=100000,100000,400000,400000",
		"/rangequery?file=pts&rect=250000,250000,750000,750000",
		"/rangequery?file=pts&rect=0,0,1000000,1000000",
		"/knn?file=pts&point=500000,500000&k=10",
		"/knn?file=pts&point=123456,654321&k=25",
		"/join?left=a&right=b",
		"/plot?file=pts&width=64&height=64",
	}
}

// ServeLoad is the serving-layer load smoke: it stands up an in-process
// HTTP server, records each query's serial answer as an oracle, then
// drives the mix from concurrent clients for the given duration. Any
// non-200 response or any body diverging from its oracle fails the run;
// on success it reports sustained throughput. CI runs this for 30s.
func ServeLoad(cfg Config, d time.Duration, clients int) error {
	cfg = cfg.withDefaults()
	if clients < 1 {
		clients = 8
	}
	sys, err := serveCorpus(cfg)
	if err != nil {
		return err
	}
	srv := serve.New(sys, serve.Config{
		CacheSize:   256,
		MaxInFlight: 4,
		QueueDepth:  4096,
		JobDeadline: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 60 * time.Second}

	get := func(q string) (int, []byte, error) {
		resp, err := client.Get(base + q)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}

	// Serial oracle pass.
	queries := serveLoadQueries()
	oracle := make(map[string][]byte, len(queries))
	for _, q := range queries {
		code, body, err := get(q)
		if err != nil {
			return fmt.Errorf("oracle %s: %v", q, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("oracle %s: status %d: %s", q, code, body)
		}
		oracle[q] = body
	}

	// Concurrent load until the deadline.
	var total, failures atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			for time.Now().Before(deadline) {
				q := queries[rng.Intn(len(queries))]
				code, body, err := get(q)
				total.Add(1)
				switch {
				case err != nil:
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: %v", q, err))
				case code != http.StatusOK:
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: status %d: %.200s", q, code, body))
				case string(body) != string(oracle[q]):
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: body diverged from serial oracle", q))
				}
			}
		}(c)
	}
	wg.Wait()

	elapsed := d.Seconds()
	fmt.Fprintf(cfg.W, "serveload: %d requests from %d clients in %v (%.1f req/s), %d failures\n",
		total.Load(), clients, d, float64(total.Load())/elapsed, failures.Load())
	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(cfg.W, "serveload: cache hits=%d misses=%d evictions=%d\n",
		snap.Counters[serve.CounterCacheHits], snap.Counters[serve.CounterCacheMisses], snap.Counters[serve.CounterCacheEvictions])
	if n := failures.Load(); n > 0 {
		return fmt.Errorf("serveload: %d/%d requests failed; first: %v", n, total.Load(), firstErr.Load())
	}
	if total.Load() == 0 {
		return fmt.Errorf("serveload: no requests completed within %v", d)
	}
	return nil
}

// The concurrency experiment quantifies the serving layer's point: with a
// shared slot pool and admission control, running J independent queries
// concurrently costs about the same total work as running them serially,
// but the wall-clock drops because master-side gaps (filter, commit,
// result readback) of one job overlap the map work of another — while
// the worker cap keeps the task concurrency at the cluster size either
// way.
func init() {
	register("concurrency", "Concurrent query throughput under shared admission (serving layer)", func(cfg Config) error {
		sys, err := serveCorpus(cfg)
		if err != nil {
			return err
		}
		queries := []geom.Rect{
			geom.NewRect(100_000, 100_000, 400_000, 400_000),
			geom.NewRect(250_000, 250_000, 750_000, 750_000),
			geom.NewRect(600_000, 100_000, 900_000, 500_000),
			geom.NewRect(50_000, 550_000, 450_000, 950_000),
			geom.NewRect(300_000, 300_000, 700_000, 700_000),
			geom.NewRect(0, 0, 1_000_000, 1_000_000),
		}
		runOne := func(i int, out string) error {
			_, _, err := ops.RangeQueryPointsTo(sys, "pts", queries[i%len(queries)], out)
			return err
		}

		const jobs = 12
		t := newTable(cfg.W, "mode", "jobs", "wall ms", "jobs/s", "speedup")

		serialDur, err := timed(func() error {
			for i := 0; i < jobs; i++ {
				if err := runOne(i, fmt.Sprintf("serial.out%d", i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.add("serial", fmt.Sprint(jobs), ms(serialDur), fmt.Sprintf("%.1f", float64(jobs)/serialDur.Seconds()), "1.0x")

		for _, inflight := range []int{2, 4} {
			sys.Cluster().SetAdmission(mapreduce.AdmissionConfig{MaxInFlight: inflight, QueueDepth: jobs})
			concDur, err := timed(func() error {
				var wg sync.WaitGroup
				errs := make([]error, jobs)
				for i := 0; i < jobs; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						errs[i] = runOne(i, fmt.Sprintf("conc%d.out%d", inflight, i))
					}(i)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("concurrent(x%d)", inflight), fmt.Sprint(jobs), ms(concDur),
				fmt.Sprintf("%.1f", float64(jobs)/concDur.Seconds()), speedup(serialDur, concDur))
		}
		t.flush()
		fmt.Fprintf(cfg.W, "slot pool: cap=%d high-water=%d (cap never exceeded)\n",
			sys.Cluster().Slots().Cap(), sys.Cluster().Slots().HighWater())
		return nil
	})
}
