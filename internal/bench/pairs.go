package bench

import (
	"fmt"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("fig29", "Farthest pair: OSM-like, uniform, Gaussian, circular worst case", runFig29)
	register("fig30", "Closest pair on OSM-like data: runtime sweep + intermediate points", runFig30)
	register("fig31", "Closest pair on SYNTH (uniform, Gaussian)", runFig31)
}

func runFig29(cfg Config) error {
	for _, dist := range []datagen.Distribution{
		datagen.Clustered, datagen.Uniform, datagen.Gaussian, datagen.Circular,
	} {
		fmt.Fprintf(cfg.W, "\n(%s)\n", dist)
		t := newTable(cfg.W, "points", "single(ms)", "hadoop-sim(ms)", "shadoop-sim(ms)", "pairs-kept")
		sizes := []int{50000, 100000, 200000}
		if dist == datagen.Circular {
			// The worst case: the hull holds a large share of the input, so
			// the single-reducer Hadoop merge degrades; sizes stay smaller.
			sizes = []int{20000, 40000, 80000}
		}
		for _, base := range sizes {
			n := cfg.n(base)
			pts := datagen.Points(dist, n, benchArea, cfg.Seed)

			dSingle, _ := timed(func() error {
				_, _ = cg.FarthestPairSingle(pts)
				return nil
			})
			sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
			if err := sys.LoadPointsHeap("heap", pts); err != nil {
				return err
			}
			var repH, repS *mapreduce.Report
			dHadoop, err := timed(func() error {
				var err error
				_, repH, err = cg.FarthestPairHadoop(sys, "heap")
				return err
			})
			if err != nil {
				return err
			}
			if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
				return err
			}
			dSH, err := timed(func() error {
				var err error
				_, repS, err = cg.FarthestPairSHadoop(sys, "idx")
				return err
			})
			if err != nil {
				return err
			}
			t.add(fmt.Sprintf("%d", n), ms(dSingle),
				ms(simDur(dHadoop, repH, cfg.Workers)),
				ms(simDur(dSH, repS, cfg.Workers)),
				fmt.Sprintf("%d/%d", repS.Splits, repS.SplitsTotal*(repS.SplitsTotal+1)/2))
		}
		t.flush()
	}
	fmt.Fprintln(cfg.W, "\nShape to match Fig. 29: on hull-friendly data the distributed versions")
	fmt.Fprintln(cfg.W, "track the (fast) single machine; on the circular worst case the pair filter")
	fmt.Fprintln(cfg.W, "prunes most of the O(G^2) partition pairs to keep SpatialHadoop viable.")
	return nil
}

func runClosestSweep(cfg Config, dist datagen.Distribution, sizes []int, showPruning bool) error {
	t := newTable(cfg.W, "points", "single(ms)", "shadoop-sim(ms)", "speedup", "intermediate")
	for _, base := range sizes {
		n := cfg.n(base)
		pts := datagen.Points(dist, n, benchArea, cfg.Seed)
		dSingle, _ := timed(func() error {
			_, _ = cg.ClosestPairSingle(pts)
			return nil
		})
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		if _, err := sys.LoadPoints("idx", pts, sindex.STRPlus); err != nil {
			return err
		}
		var rep *mapreduce.Report
		dSH, err := timed(func() error {
			var err error
			_, rep, err = cg.ClosestPairSHadoop(sys, "idx")
			return err
		})
		if err != nil {
			return err
		}
		sim := simDur(dSH, rep, cfg.Workers)
		t.add(fmt.Sprintf("%d", n), ms(dSingle), ms(sim), speedup(dSingle, sim),
			fmt.Sprintf("%d", rep.Counters[cg.CounterIntermediatePoints]))
	}
	t.flush()
	if showPruning {
		fmt.Fprintln(cfg.W, "\nShape to match Fig. 30b: only a vanishing fraction of the input reaches")
		fmt.Fprintln(cfg.W, "the global closest-pair step; the delta-buffer prunes everything else.")
	}
	return nil
}

func runFig30(cfg Config) error {
	return runClosestSweep(cfg, datagen.Clustered, []int{50000, 100000, 200000, 400000}, true)
}

func runFig31(cfg Config) error {
	fmt.Fprintln(cfg.W, "\n(uniform)")
	if err := runClosestSweep(cfg, datagen.Uniform, []int{50000, 100000, 200000}, false); err != nil {
		return err
	}
	fmt.Fprintln(cfg.W, "\n(gaussian)")
	return runClosestSweep(cfg, datagen.Gaussian, []int{50000, 100000, 200000}, false)
}
