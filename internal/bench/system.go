package bench

import (
	"fmt"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

func init() {
	register("table1", "Partitioning techniques: disjointness, skew handling, balance", runTable1)
	register("fig20", "Synthetic distribution sanity summary", runFig20)
	register("sigmod14", "SpatialHadoop system ops: range query, kNN, spatial join", runSigmod14)
}

func runTable1(cfg Config) error {
	t := newTable(cfg.W, "technique", "disjoint", "handles-skew", "cells", "max/avg(gauss)", "replication(regions)")
	n := cfg.n(30000)
	pts := datagen.Points(datagen.Gaussian, n, benchArea, cfg.Seed)
	polys := datagen.RandomPolygons(cfg.n(2000), 6, 1e6/60, benchArea, cfg.Seed)
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	for _, tech := range []sindex.Technique{
		sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree,
		sindex.KDTree, sindex.ZCurve, sindex.Hilbert,
	} {
		info := sindex.Table1[tech]
		sys := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
		f, err := sys.LoadPoints("pts", pts, tech)
		if err != nil {
			return err
		}
		counts := map[string]int{}
		for _, b := range f.File.Blocks {
			counts[b.Partition] += b.NumRecords()
		}
		max, total := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		imb := float64(max) / (float64(total) / float64(len(counts)))

		rf, err := sys.LoadRegions("regs", regions, tech)
		if err != nil {
			return err
		}
		repl := float64(rf.File.Records) / float64(len(regions))

		t.add(tech.String(),
			fmt.Sprintf("%v", info.Disjoint),
			fmt.Sprintf("%v", info.HandlesSkew),
			fmt.Sprintf("%d", len(f.Index.Cells)),
			fmt.Sprintf("%.2f", imb),
			fmt.Sprintf("%.2fx", repl))
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nShape to match Table 1: grid is the only technique that degrades on skew")
	fmt.Fprintln(cfg.W, "(high max/avg); disjoint techniques pay a replication factor on regions.")
	return nil
}

func runFig20(cfg Config) error {
	t := newTable(cfg.W, "distribution", "points", "mbr-coverage%", "skyline-size", "hull-size")
	n := cfg.n(100000)
	for _, dist := range []datagen.Distribution{
		datagen.Uniform, datagen.Gaussian, datagen.Correlated,
		datagen.ReverselyCorrelated, datagen.Circular, datagen.Clustered,
	} {
		pts := datagen.Points(dist, n, benchArea, cfg.Seed)
		mbr := geom.RectOf(pts)
		sky := geom.Skyline(pts)
		hull := geom.ConvexHull(pts)
		t.add(dist.String(), fmt.Sprintf("%d", len(pts)),
			fmt.Sprintf("%.1f", 100*mbr.Area()/benchArea.Area()),
			fmt.Sprintf("%d", len(sky)), fmt.Sprintf("%d", len(hull)))
	}
	t.flush()
	fmt.Fprintln(cfg.W, "\nExpected: anticorrelated has a huge skyline (worst case), circular a huge")
	fmt.Fprintln(cfg.W, "hull (farthest-pair worst case), correlated/Gaussian tiny skylines.")
	return nil
}

func runSigmod14(cfg Config) error {
	n := cfg.n(200000)
	pts := datagen.Points(datagen.Clustered, n, benchArea, cfg.Seed)

	sysHeap := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
	if err := sysHeap.LoadPointsHeap("pts", pts); err != nil {
		return err
	}
	sysIdx := core.New(core.Config{BlockSize: cfg.BlockSize, Workers: cfg.Workers, Seed: cfg.Seed, Fault: cfg.Chaos})
	if _, err := sysIdx.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		return err
	}

	fmt.Fprintln(cfg.W, "\n(range query, 1% of the space)")
	t := newTable(cfg.W, "storage", "time(ms)", "partitions", "results")
	q := geom.NewRect(4e5, 4e5, 5e5, 5e5)
	for _, tc := range []struct {
		name string
		sys  *core.System
	}{{"heap (Hadoop)", sysHeap}, {"indexed (SHadoop)", sysIdx}} {
		var nres, parts int
		var rqRep *mapreduce.Report
		d, err := timed(func() error {
			res, rep, err := ops.RangeQueryPoints(tc.sys, "pts", q)
			if rep != nil {
				nres, parts = len(res), rep.Splits
				rqRep = rep
			}
			return err
		})
		if err != nil {
			return err
		}
		persistObs(cfg, "sigmod14-rangequery-"+strings.Fields(tc.name)[0], rqRep)
		t.add(tc.name, ms(d), fmt.Sprintf("%d", parts), fmt.Sprintf("%d", nres))
	}
	t.flush()

	fmt.Fprintln(cfg.W, "\n(kNN, k=20)")
	t = newTable(cfg.W, "storage", "time(ms)")
	for _, tc := range []struct {
		name string
		sys  *core.System
	}{{"heap (Hadoop)", sysHeap}, {"indexed (SHadoop)", sysIdx}} {
		d, err := timed(func() error {
			_, _, err := ops.KNN(tc.sys, "pts", geom.Pt(5e5, 5e5), 20)
			return err
		})
		if err != nil {
			return err
		}
		t.add(tc.name, ms(d))
	}
	t.flush()

	fmt.Fprintln(cfg.W, "\n(spatial join)")
	aPolys := datagen.RandomPolygons(cfg.n(1500), 5, 1e6/80, benchArea, cfg.Seed)
	bPolys := datagen.RandomPolygons(cfg.n(1200), 4, 1e6/70, benchArea, cfg.Seed+1)
	a := make([]geom.Region, len(aPolys))
	for i, pg := range aPolys {
		a[i] = geom.RegionOf(pg)
	}
	b := make([]geom.Region, len(bPolys))
	for i, pg := range bPolys {
		b[i] = geom.RegionOf(pg)
	}
	t = newTable(cfg.W, "strategy", "time(ms)", "pairs")
	if err := sysHeap.LoadRegionsHeap("a", a); err != nil {
		return err
	}
	if err := sysHeap.LoadRegionsHeap("b", b); err != nil {
		return err
	}
	var npairs int
	d, err := timed(func() error {
		pairs, _, err := ops.SpatialJoinPBSM(sysHeap, "a", "b", 10)
		npairs = len(pairs)
		return err
	})
	if err != nil {
		return err
	}
	t.add("PBSM (Hadoop)", ms(d), fmt.Sprintf("%d", npairs))

	if _, err := sysIdx.LoadRegions("a", a, sindex.STRPlus); err != nil {
		return err
	}
	if _, err := sysIdx.LoadRegions("b", b, sindex.STRPlus); err != nil {
		return err
	}
	d, err = timed(func() error {
		pairs, _, err := ops.SpatialJoinIndexed(sysIdx, "a", "b")
		npairs = len(pairs)
		return err
	})
	if err != nil {
		return err
	}
	t.add("indexed (SHadoop)", ms(d), fmt.Sprintf("%d", npairs))
	t.flush()
	return nil
}
