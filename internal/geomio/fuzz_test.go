package geomio

import (
	"testing"
)

// FuzzDecodePoint checks the decoder never panics and that successful
// decodes re-encode losslessly.
func FuzzDecodePoint(f *testing.F) {
	f.Add("1,2")
	f.Add("-1.5e300,0.25")
	f.Add("")
	f.Add(",")
	f.Add("nan,inf")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := DecodePoint(s)
		if err != nil {
			return
		}
		got, err := DecodePoint(EncodePoint(p))
		if err != nil {
			t.Fatalf("re-decode of %q failed: %v", s, err)
		}
		// NaN breaks equality; everything else must round trip.
		if p == p && got != p {
			t.Fatalf("round trip of %q: %v != %v", s, got, p)
		}
	})
}

// FuzzDecodeRegion checks the region decoder never panics and round trips.
func FuzzDecodeRegion(f *testing.F) {
	f.Add("1,2 3,4 5,6")
	f.Add("1,2 3,4|5,6 7,8 9,10")
	f.Add("|||")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		rg, err := DecodeRegion(s)
		if err != nil {
			return
		}
		rg2, err := DecodeRegion(EncodeRegion(rg))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rg2.Rings) != len(rg.Rings) {
			t.Fatalf("ring count changed: %d -> %d", len(rg.Rings), len(rg2.Rings))
		}
	})
}

// FuzzDecodeSegment checks the segment decoder never panics.
func FuzzDecodeSegment(f *testing.F) {
	f.Add("1,2 3,4")
	f.Add(" ")
	f.Add("1,2")
	f.Fuzz(func(t *testing.T, s string) {
		seg, err := DecodeSegment(s)
		if err != nil {
			return
		}
		if _, err := DecodeSegment(EncodeSegment(seg)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
