// Package geomio provides the text record encodings used for all data in
// the block file system, mirroring Hadoop's text input/output formats.
// Points encode as "x,y"; segments as two points separated by a space;
// regions (multi-ring polygons) as rings separated by '|' with
// space-separated vertices.
package geomio

import (
	"fmt"
	"strconv"
	"strings"

	"spatialhadoop/internal/geom"
)

// EncodePoint formats p as "x,y".
func EncodePoint(p geom.Point) string {
	return formatF(p.X) + "," + formatF(p.Y)
}

// DecodePoint parses a point encoded by EncodePoint.
func DecodePoint(s string) (geom.Point, error) {
	i := strings.IndexByte(s, ',')
	if i < 0 {
		return geom.Point{}, fmt.Errorf("geomio: bad point %q", s)
	}
	x, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("geomio: bad point x in %q: %v", s, err)
	}
	y, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return geom.Point{}, fmt.Errorf("geomio: bad point y in %q: %v", s, err)
	}
	return geom.Point{X: x, Y: y}, nil
}

// MustDecodePoint is DecodePoint for records known to be well-formed
// (produced by this package); it panics on corruption, which indicates a
// runtime bug rather than bad user input.
func MustDecodePoint(s string) geom.Point {
	p, err := DecodePoint(s)
	if err != nil {
		panic(err)
	}
	return p
}

// EncodePoints encodes a batch of points, one record each.
func EncodePoints(pts []geom.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = EncodePoint(p)
	}
	return out
}

// DecodePoints decodes a batch of point records.
func DecodePoints(recs []string) ([]geom.Point, error) {
	out := make([]geom.Point, len(recs))
	for i, r := range recs {
		p, err := DecodePoint(r)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// EncodeSegment formats s as "x1,y1 x2,y2".
func EncodeSegment(s geom.Segment) string {
	return EncodePoint(s.A) + " " + EncodePoint(s.B)
}

// DecodeSegment parses a segment encoded by EncodeSegment.
func DecodeSegment(s string) (geom.Segment, error) {
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return geom.Segment{}, fmt.Errorf("geomio: bad segment %q", s)
	}
	a, err := DecodePoint(s[:i])
	if err != nil {
		return geom.Segment{}, err
	}
	b, err := DecodePoint(s[i+1:])
	if err != nil {
		return geom.Segment{}, err
	}
	return geom.Segment{A: a, B: b}, nil
}

// EncodeSegments encodes a batch of segments, one record each.
func EncodeSegments(segs []geom.Segment) []string {
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = EncodeSegment(s)
	}
	return out
}

// DecodeSegments decodes a batch of segment records.
func DecodeSegments(recs []string) ([]geom.Segment, error) {
	out := make([]geom.Segment, len(recs))
	for i, r := range recs {
		s, err := DecodeSegment(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// EncodeRegion formats a region as '|'-separated rings of space-separated
// vertices.
func EncodeRegion(rg geom.Region) string {
	rings := make([]string, 0, len(rg.Rings))
	for _, ring := range rg.Rings {
		pts := make([]string, len(ring.Vertices))
		for i, p := range ring.Vertices {
			pts[i] = EncodePoint(p)
		}
		rings = append(rings, strings.Join(pts, " "))
	}
	return strings.Join(rings, "|")
}

// DecodeRegion parses a region encoded by EncodeRegion.
func DecodeRegion(s string) (geom.Region, error) {
	if s == "" {
		return geom.Region{}, nil
	}
	var rg geom.Region
	for _, ringStr := range strings.Split(s, "|") {
		fields := strings.Fields(ringStr)
		if len(fields) == 0 {
			continue
		}
		ring := geom.Polygon{Vertices: make([]geom.Point, 0, len(fields))}
		for _, f := range fields {
			p, err := DecodePoint(f)
			if err != nil {
				return geom.Region{}, err
			}
			ring.Vertices = append(ring.Vertices, p)
		}
		rg.Rings = append(rg.Rings, ring)
	}
	return rg, nil
}

// EncodePolygon formats a single-ring polygon (a region with one ring).
func EncodePolygon(pg geom.Polygon) string {
	return EncodeRegion(geom.RegionOf(pg))
}

// DecodePolygon parses a polygon record, taking the first ring.
func DecodePolygon(s string) (geom.Polygon, error) {
	rg, err := DecodeRegion(s)
	if err != nil {
		return geom.Polygon{}, err
	}
	if len(rg.Rings) == 0 {
		return geom.Polygon{}, fmt.Errorf("geomio: empty polygon %q", s)
	}
	return rg.Rings[0], nil
}

// EncodeRect formats r as "minx,miny,maxx,maxy".
func EncodeRect(r geom.Rect) string {
	return fmt.Sprintf("%s,%s,%s,%s", formatF(r.MinX), formatF(r.MinY), formatF(r.MaxX), formatF(r.MaxY))
}

// DecodeRect parses a rectangle encoded by EncodeRect.
func DecodeRect(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("geomio: bad rect %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("geomio: bad rect coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	return geom.Rect{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

// formatF formats with the shortest round-trip representation ('g', -1):
// ParseFloat recovers the exact bits, like the old fixed 17-digit form,
// but typical coordinates encode in far fewer digits, which roughly halves
// both the format and the re-parse cost on the record hot path.
func formatF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
