package geomio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialhadoop/internal/geom"
)

func TestPointRoundTrip(t *testing.T) {
	check := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := geom.Point{X: x, Y: y}
		got, err := DecodePoint(EncodePoint(p))
		return err == nil && got == p
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPointDecodeErrors(t *testing.T) {
	for _, bad := range []string{"", "1", "a,b", "1,", ",2", "1,2,3x"} {
		if _, err := DecodePoint(bad); err == nil && bad != "1,2,3x" {
			t.Errorf("DecodePoint(%q): expected error", bad)
		}
	}
	if _, err := DecodePoint("1;2"); err == nil {
		t.Error("expected error for wrong separator")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	s := geom.Seg(geom.Pt(1.5, -2.25), geom.Pt(1e-17, 9e99))
	got, err := DecodeSegment(EncodeSegment(s))
	if err != nil || got != s {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := DecodeSegment("1,2"); err == nil {
		t.Error("expected error for missing second point")
	}
}

func TestRegionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var rg geom.Region
		for r := 0; r <= rng.Intn(3); r++ {
			ring := geom.Polygon{}
			for v := 0; v < 3+rng.Intn(5); v++ {
				ring.Vertices = append(ring.Vertices, geom.Pt(rng.NormFloat64()*1e3, rng.NormFloat64()*1e3))
			}
			rg.Rings = append(rg.Rings, ring)
		}
		got, err := DecodeRegion(EncodeRegion(rg))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rings) != len(rg.Rings) {
			t.Fatalf("rings = %d, want %d", len(got.Rings), len(rg.Rings))
		}
		for i := range rg.Rings {
			if len(got.Rings[i].Vertices) != len(rg.Rings[i].Vertices) {
				t.Fatal("vertex count mismatch")
			}
			for j := range rg.Rings[i].Vertices {
				if got.Rings[i].Vertices[j] != rg.Rings[i].Vertices[j] {
					t.Fatal("vertex mismatch")
				}
			}
		}
	}
}

func TestEmptyRegion(t *testing.T) {
	got, err := DecodeRegion("")
	if err != nil || len(got.Rings) != 0 {
		t.Fatalf("empty region: %v, %v", got, err)
	}
}

func TestRectRoundTrip(t *testing.T) {
	r := geom.NewRect(-1.25, 2.5, 1e10, 1e-10)
	got, err := DecodeRect(EncodeRect(r))
	if err != nil || got != r {
		t.Fatalf("got %v, %v", got, err)
	}
	// Infinities survive (empty rect sentinel).
	e := geom.EmptyRect()
	got, err = DecodeRect(EncodeRect(e))
	if err != nil || !got.IsEmpty() {
		t.Fatalf("empty rect: %v, %v", got, err)
	}
}

func TestBatchHelpers(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	recs := EncodePoints(pts)
	got, err := DecodePoints(recs)
	if err != nil || len(got) != 2 || got[0] != pts[0] || got[1] != pts[1] {
		t.Fatalf("points: %v, %v", got, err)
	}
	segs := []geom.Segment{geom.Seg(pts[0], pts[1])}
	sgot, err := DecodeSegments(EncodeSegments(segs))
	if err != nil || len(sgot) != 1 || sgot[0] != segs[0] {
		t.Fatalf("segments: %v, %v", sgot, err)
	}
	if _, err := DecodePoints([]string{"bad"}); err == nil {
		t.Error("expected batch decode error")
	}
}

func TestPolygonRoundTrip(t *testing.T) {
	pg := geom.Poly(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4))
	got, err := DecodePolygon(EncodePolygon(pg))
	if err != nil || got.Len() != 3 {
		t.Fatalf("polygon: %v, %v", got, err)
	}
	if _, err := DecodePolygon(""); err == nil {
		t.Error("expected error for empty polygon")
	}
}
