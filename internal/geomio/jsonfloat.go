package geomio

import (
	"fmt"
	"math"
	"strconv"
)

// AppendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format except for very large or very
// small magnitudes, with the exponent's leading zero stripped. Both the
// serving layer's response encoders and the pinned partitions'
// pre-encoded point fragments rely on this producing encoding/json's
// bytes; the equivalence is pinned by a differential test.
func AppendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("json: unsupported value: %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}
