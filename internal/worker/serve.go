package worker

import (
	"fmt"

	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
)

// Query-executor role: a worker started with Config.ServeTasks answers
// the master's sharded-serving scatter calls. Each call names one
// partition (with its replica-aware descriptor); the worker pins the
// partition into its memory tier — assembled from its own replica store,
// peer holders, or the master, exactly like a map task's input — and
// executes the partition-level half of the range or kNN protocol against
// the pinned R-tree. Results ship back as canonical fragments; the
// master's gather merges them into the same body the local engine builds.

// pinServePartition resolves one exec call to a pinned partition.
func (w *Worker) pinServePartition(file string, epoch int64, meta *mapreduce.WireSplitMeta) (*ops.LocalPartition, error) {
	if w.tier == nil {
		return nil, fmt.Errorf("worker: not serve-capable (started without ServeTasks)")
	}
	if meta == nil {
		return nil, fmt.Errorf("worker: exec call without a split descriptor")
	}
	if part, ok := w.tier.Lookup(file, epoch, meta.Partition); ok {
		return part, nil
	}
	client, _, _ := w.session()
	if client == nil {
		return nil, fmt.Errorf("worker: no master session")
	}
	sp, _, err := w.assembleSplit(client, meta)
	if err != nil {
		return nil, err
	}
	return w.tier.PinPartition(file, epoch, sp)
}

// ServeTierStats exposes the serving tier's footprint (0, 0 when the
// worker is not serve-capable) for tests and telemetry.
func (w *Worker) ServeTierStats() (partitions int, bytes int64) {
	if w.tier == nil {
		return 0, 0
	}
	return w.tier.Stats()
}

// ExecRange answers one partition's fragment of a sharded range query:
// the pinned partition's matching points in canonical (X, then Y) order.
func (s *shardServer) ExecRange(args mapreduce.ExecRangeArgs, reply *mapreduce.ExecRangeReply) error {
	part, err := s.w.pinServePartition(args.File, args.Epoch, args.Meta)
	if err != nil {
		return err
	}
	reply.Points = ops.PartitionRangePoints(part, args.Query)
	reply.Records = int64(len(part.Recs))
	return nil
}

// ExecKNN answers one partition's tie-complete candidate set, sorted with
// the canonical (dist, record) comparator and truncated to k. Truncating
// per shard is safe: a candidate outside a shard's own top k can never be
// in the merged top k.
func (s *shardServer) ExecKNN(args mapreduce.ExecKNNArgs, reply *mapreduce.ExecKNNReply) error {
	part, err := s.w.pinServePartition(args.File, args.Epoch, args.Meta)
	if err != nil {
		return err
	}
	cands := ops.SortKNNCandidates(ops.PartitionKNNCandidates(part, args.Q, args.K), args.K)
	reply.Cands = make([]mapreduce.WireKNNCandidate, len(cands))
	for i, c := range cands {
		reply.Cands[i] = mapreduce.WireKNNCandidate{Dist: c.Dist, Rec: c.Rec}
	}
	reply.Records = int64(len(part.Recs))
	return nil
}
