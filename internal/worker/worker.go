// Package worker implements the worker side of the distributed runtime:
// a process that registers with a master over RPC, heartbeats under a
// lease, long-polls for map and reduce tasks, executes them against split
// records shipped from the master's DFS, spills intermediate shards to a
// local directory, and serves those spills to reducers. A worker holds no
// job state of its own — everything it needs to run a task arrives in the
// assignment (job kind, configuration, shard sources), so a worker that
// dies is replaced by re-issuing its tasks elsewhere, exactly as in
// Hadoop's tasktracker model.
package worker

import (
	"fmt"
	"io"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/serve"
)

// Config configures one worker process.
type Config struct {
	// Master is the master's RPC address (required).
	Master string
	// Dir is the spill directory for intermediate shards. Empty means a
	// fresh temporary directory, removed on Stop.
	Dir string
	// Tasks is the number of concurrently executing tasks (default 2).
	Tasks int
	// Listen is the shard-serving listen address (default "127.0.0.1:0").
	Listen string
	// FakePID, when nonzero, is reported to the master instead of the real
	// process id. Tests running workers as goroutines use it to give each
	// in-process worker a distinct identity for the kill harness.
	FakePID int
	// ServeTasks enables the query-executor role: the worker registers as
	// serve-capable, pins replica partitions into a local memory tier, and
	// answers the master's ExecRange/ExecKNN scatter calls.
	ServeTasks bool
	// ServeTierBytes is the serving tier's pin budget (default 64 MiB;
	// only meaningful with ServeTasks).
	ServeTierBytes int64
}

func (c Config) withDefaults() Config {
	if c.Tasks <= 0 {
		c.Tasks = 2
	}
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.ServeTierBytes <= 0 {
		c.ServeTierBytes = 64 << 20
	}
	return c
}

// Worker is a running worker instance.
type Worker struct {
	cfg     Config
	ln      net.Listener
	dir     string
	ownsDir bool
	// tier is the serving-role pin tier (nil unless Config.ServeTasks):
	// replica partitions decoded and indexed in memory, keyed by
	// (file, epoch, partition) so a DFS rewrite can never be answered
	// from a stale pin.
	tier *serve.MemTier

	mu     sync.Mutex
	client *rpc.Client
	id     int64
	hb     time.Duration
	// dropped marks jobs whose spills were garbage-collected; a late
	// spill from a straggler attempt of a dropped job is re-removed
	// instead of resurrecting the job directory.
	dropped map[int64]bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches a worker: it opens the shard server, registers with the
// master (failing fast if the master is unreachable), and spawns the
// heartbeat loop and task executors. The worker runs until Stop.
func Start(cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Master == "" {
		return nil, fmt.Errorf("worker: no master address")
	}
	dir, ownsDir := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "shadoop-worker-")
		if err != nil {
			return nil, err
		}
		dir, ownsDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	w := &Worker{cfg: cfg, ln: ln, dir: dir, ownsDir: ownsDir, stop: make(chan struct{})}
	if cfg.ServeTasks {
		w.tier = serve.NewMemTier(cfg.ServeTierBytes, obs.NewRegistry())
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(mapreduce.ShardService, &shardServer{w: w}); err != nil {
		ln.Close()
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	if err := w.connect(); err != nil {
		ln.Close()
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < cfg.Tasks; i++ {
		w.wg.Add(1)
		go w.executorLoop()
	}
	return w, nil
}

// Addr returns the worker's shard-serving address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// ID returns the worker id the master assigned at (re-)registration.
func (w *Worker) ID() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Dir returns the worker's spill directory.
func (w *Worker) Dir() string { return w.dir }

// Stop shuts the worker down: loops exit, the shard listener closes, and
// a temporary spill directory is removed. It does not wait for an
// in-flight task attempt to finish executing — from the master's point of
// view that is indistinguishable from a crash, which is the point: the
// lease expires and the task is re-issued.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.ln.Close()
		w.mu.Lock()
		if w.client != nil {
			w.client.Close()
			w.client = nil
		}
		w.mu.Unlock()
		if w.ownsDir {
			os.RemoveAll(w.dir)
		}
	})
}

// Wait blocks until the worker's loops have exited (after Stop).
func (w *Worker) Wait() { w.wg.Wait() }

// connect dials the master and registers, replacing any previous client.
func (w *Worker) connect() error {
	client, err := rpc.Dial("tcp", w.cfg.Master)
	if err != nil {
		return err
	}
	pid := w.cfg.FakePID
	if pid == 0 {
		pid = os.Getpid()
	}
	var reply mapreduce.RegisterReply
	args := mapreduce.RegisterArgs{Addr: w.Addr(), PID: pid, CanServe: w.cfg.ServeTasks}
	if err := client.Call(mapreduce.MasterService+".Register", args, &reply); err != nil {
		client.Close()
		return err
	}
	w.mu.Lock()
	if w.client != nil {
		w.client.Close()
	}
	w.client = client
	w.id = reply.WorkerID
	w.hb = reply.HeartbeatEvery
	w.mu.Unlock()
	return nil
}

// session snapshots the current client and worker id.
func (w *Worker) session() (*rpc.Client, int64, time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client, w.id, w.hb
}

// reconnect re-establishes the master session after a connection failure
// or a lease the master expired, retrying until it succeeds or the worker
// stops.
func (w *Worker) reconnect() {
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		if err := w.connect(); err == nil {
			return
		}
		_, _, hb := w.session()
		if hb <= 0 {
			hb = 100 * time.Millisecond
		}
		select {
		case <-w.stop:
			return
		case <-time.After(hb):
		}
	}
}

// heartbeatLoop renews the worker's lease. A failed call or a negative
// acknowledgement (the master expired our lease while we were alive but
// slow) triggers re-registration under a fresh id.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		client, id, hb := w.session()
		if hb <= 0 {
			hb = 100 * time.Millisecond
		}
		select {
		case <-w.stop:
			return
		case <-time.After(hb):
		}
		if client == nil {
			w.reconnect()
			continue
		}
		var reply mapreduce.HeartbeatReply
		err := client.Call(mapreduce.MasterService+".Heartbeat", mapreduce.HeartbeatArgs{WorkerID: id}, &reply)
		if err == nil && reply.OK && w.tier != nil {
			// Epoch push: drop serving pins a DFS rewrite obsoleted. The
			// epoch-keyed tier already guarantees correctness; this frees
			// the memory before LRU pressure would.
			for file, epoch := range reply.Epochs {
				w.tier.DropStale(file, epoch)
			}
		}
		if err != nil || !reply.OK {
			select {
			case <-w.stop:
				return
			default:
			}
			w.reconnect()
		}
	}
}

// executorLoop pulls and executes tasks until the worker stops. The
// GetTask long-poll doubles as a heartbeat, so a busy worker polling for
// its next task never expires.
func (w *Worker) executorLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		client, id, hb := w.session()
		if client == nil {
			if hb <= 0 {
				hb = 100 * time.Millisecond
			}
			select {
			case <-w.stop:
				return
			case <-time.After(hb):
			}
			continue
		}
		var t mapreduce.TaskAssignment
		if err := client.Call(mapreduce.MasterService+".GetTask", mapreduce.GetTaskArgs{WorkerID: id}, &t); err != nil {
			// The heartbeat loop owns reconnection; just back off.
			select {
			case <-w.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if t.Phase == mapreduce.TaskNone {
			continue
		}
		var res mapreduce.TaskDoneArgs
		switch t.Phase {
		case mapreduce.TaskMap:
			res = w.runMap(client, id, &t)
		case mapreduce.TaskReduce:
			res = w.runReduce(id, &t)
		default:
			continue
		}
		var ack mapreduce.TaskDoneReply
		_ = client.Call(mapreduce.MasterService+".TaskDone", res, &ack)
	}
}

// fail fills a TaskDoneArgs failure report.
func fail(res *mapreduce.TaskDoneArgs, err error) mapreduce.TaskDoneArgs {
	res.Err = err.Error()
	res.Transient = fault.IsTransient(err)
	return *res
}

// runMap executes one map attempt: assemble the split — from the local
// replica store, peer holders, or the master, in that order — rebuild
// the job kind, run the shared attempt body, spill one sealed shard
// frame per reducer, and report totals plus the metrics buffer and the
// read path's local/remote traffic split.
func (w *Worker) runMap(client *rpc.Client, id int64, t *mapreduce.TaskAssignment) mapreduce.TaskDoneArgs {
	res := mapreduce.TaskDoneArgs{WorkerID: id, DispatchID: t.DispatchID}
	var split *mapreduce.Split
	if t.Meta != nil {
		if sp, st, err := w.assembleSplit(client, t.Meta); err == nil {
			split = sp
			res.LocalReads, res.LocalBytes = st.localReads, st.localBytes
			res.RemoteReads, res.RemoteBytes = st.remoteReads, st.remoteBytes
		}
	}
	if split == nil {
		// No replica directory (data plane off) or block assembly failed:
		// whole-split read from the master, every byte remote.
		var ws mapreduce.WireSplit
		args := mapreduce.ReadSplitArgs{JobID: t.JobID, Task: t.Task}
		if err := client.Call(mapreduce.MasterService+".ReadSplit", args, &ws); err != nil {
			return fail(&res, fault.Transient(err))
		}
		split = ws.Split()
		res.LocalReads, res.LocalBytes = 0, 0
		res.RemoteReads = int64(len(split.Blocks) + len(split.Extra))
		res.RemoteBytes = 0
		for _, b := range split.Blocks {
			res.RemoteBytes += b.Bytes
		}
		for _, b := range split.Extra {
			res.RemoteBytes += b.Bytes
		}
	}
	kf, err := mapreduce.BuildKind(t.JobKind, t.Conf)
	if err != nil {
		return fail(&res, err) // permanent: the worker cannot run this kind
	}
	shards, out, tm, err := mapreduce.ExecMapAttempt(kf, t.JobKind, t.Conf, split, t.NumShards, t.Attempt)
	if err != nil {
		return fail(&res, err)
	}
	// Every reducer's shard file is written, even when empty, so a fetch
	// never has to distinguish "no pairs" from "spill lost".
	for ri := 0; ri < t.NumShards; ri++ {
		var pairs []mapreduce.Pair
		if ri < len(shards) {
			pairs = shards[ri]
		}
		frame, err := mapreduce.EncodeShard(pairs)
		if err != nil {
			return fail(&res, err)
		}
		if err := w.writeSpill(t.JobID, t.Task, t.Attempt, ri, frame); err != nil {
			return fail(&res, fault.Transient(err))
		}
	}
	pairs, bytes := mapreduce.ShardTotals(shards)
	res.Out = out
	res.Metrics = tm.Export()
	res.RecordsIn = int64(split.NumRecords())
	res.Pairs = pairs
	res.Bytes = bytes
	return res
}

// runReduce executes one reduce attempt: stream every map task's shard
// from its holder (in map-task order, matching the in-process shuffle)
// and merge each decoded batch as it arrives, so merging overlaps the
// transfer of the rest of the shard. A shard that cannot be fetched —
// dead holder, torn spill — is reported in LostMaps so the master
// re-runs those map tasks before the retry; the half-merged groups die
// with the failed attempt.
func (w *Worker) runReduce(id int64, t *mapreduce.TaskAssignment) mapreduce.TaskDoneArgs {
	res := mapreduce.TaskDoneArgs{WorkerID: id, DispatchID: t.DispatchID}
	kf, err := mapreduce.BuildKind(t.JobKind, t.Conf)
	if err != nil {
		return fail(&res, err)
	}
	groups := make(map[string][]string)
	var lost []int
	for _, src := range t.Sources {
		if src.Addr == w.Addr() {
			pairs, err := w.readSpill(t.JobID, src.Task, src.Attempt, t.Task)
			if err != nil {
				lost = append(lost, src.Task)
				continue
			}
			mapreduce.MergePairs(groups, pairs)
			continue
		}
		err := mapreduce.StreamShardFrom(src.Addr, t.JobID, src.Task, src.Attempt, t.Task,
			func(batch []mapreduce.Pair) error {
				mapreduce.MergePairs(groups, batch)
				return nil
			})
		if err != nil {
			lost = append(lost, src.Task)
		}
	}
	if len(lost) > 0 {
		res.LostMaps = lost
		return fail(&res, fault.Transientf("worker: reduce %d lost shards of %d map task(s)", t.Task, len(lost)))
	}
	out, valuesIn, tm, err := mapreduce.ExecReduceAttempt(kf, t.JobKind, t.Conf, groups, t.Attempt)
	if err != nil {
		return fail(&res, err)
	}
	res.Out = out
	res.Metrics = tm.Export()
	res.RecordsIn = valuesIn
	return res
}

// readStats is one map attempt's input-traffic split.
type readStats struct {
	localReads, localBytes, remoteReads, remoteBytes int64
}

// assembleSplit rebuilds a map task's split from the replica-aware
// descriptor: each block from this worker's own replica store when
// present, else from a peer holder, else from the master. Block order —
// and so record iteration order, local-index construction and output —
// is exactly the descriptor's order, which is the in-process split's.
func (w *Worker) assembleSplit(master *rpc.Client, meta *mapreduce.WireSplitMeta) (*mapreduce.Split, readStats, error) {
	s := &mapreduce.Split{Partition: meta.Partition, MBR: meta.MBR, ContentMBR: meta.ContentMBR, Tag: meta.Tag}
	var st readStats
	peers := make(map[string]*rpc.Client)
	defer func() {
		for _, c := range peers {
			if c != nil {
				c.Close()
			}
		}
	}()
	for _, ref := range meta.Blocks {
		records, local, err := w.readBlock(master, peers, ref)
		if err != nil {
			return nil, readStats{}, err
		}
		b := dfs.NewBlockFromRecords(ref.Partition, records)
		if ref.Extra {
			s.Extra = append(s.Extra, b)
		} else {
			s.Blocks = append(s.Blocks, b)
		}
		if local {
			st.localReads++
			st.localBytes += b.Bytes
		} else {
			st.remoteReads++
			st.remoteBytes += b.Bytes
		}
	}
	return s, st, nil
}

// readBlock reads one block's records through the locality chain: own
// replica file, peer holders, master. The bool result reports whether
// the read was local.
func (w *Worker) readBlock(master *rpc.Client, peers map[string]*rpc.Client, ref mapreduce.WireBlockRef) ([]string, bool, error) {
	if frame, err := os.ReadFile(w.replicaPath(ref.ID)); err == nil {
		if records, err := mapreduce.DecodeBlockFrame(frame); err == nil {
			return records, true, nil
		}
		// A torn replica is not fatal — fall through to a remote copy.
	}
	self := w.Addr()
	for _, addr := range ref.Holders {
		if addr == self {
			continue
		}
		c, ok := peers[addr]
		if !ok {
			c, _ = rpc.Dial("tcp", addr)
			peers[addr] = c // nil caches the dial failure for this split
		}
		if c == nil {
			continue
		}
		var reply mapreduce.ReadBlockReply
		if err := c.Call(mapreduce.ShardService+".ReadBlock", mapreduce.ReadBlockArgs{ID: ref.ID}, &reply); err != nil {
			continue
		}
		if records, err := mapreduce.DecodeBlockFrame(reply.Frame); err == nil {
			return records, false, nil
		}
	}
	var reply mapreduce.ReadBlockReply
	if err := master.Call(mapreduce.ShardService+".ReadBlock", mapreduce.ReadBlockArgs{ID: ref.ID}, &reply); err != nil {
		return nil, false, fault.Transient(err)
	}
	records, err := mapreduce.DecodeBlockFrame(reply.Frame)
	if err != nil {
		return nil, false, fault.Transient(err)
	}
	return records, false, nil
}

// spillPath lays the spill directory out as job<J>/m<task>.a<attempt>.r<reducer>.
func (w *Worker) spillPath(jobID int64, task, attempt, reduce int) string {
	return filepath.Join(w.dir, fmt.Sprintf("job%d", jobID), fmt.Sprintf("m%d.a%d.r%d", task, attempt, reduce))
}

// writeSpill persists one sealed spill stream via tmp+rename, so a crash
// mid-write leaves no half-visible file: the fetch either finds a whole
// stream (whose frames it still verifies) or no file at all. A spill
// landing after the job was dropped is removed again — a straggler
// attempt must not resurrect a garbage-collected job directory.
func (w *Worker) writeSpill(jobID int64, task, attempt, reduce int, frame []byte) error {
	path := w.spillPath(jobID, task, attempt, reduce)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	w.mu.Lock()
	dropped := w.dropped[jobID]
	w.mu.Unlock()
	if dropped {
		os.RemoveAll(filepath.Join(w.dir, fmt.Sprintf("job%d", jobID)))
	}
	return nil
}

// replicaPath lays the replica store out as replica/b<blockID>.
func (w *Worker) replicaPath(id int64) string {
	return filepath.Join(w.dir, "replica", fmt.Sprintf("b%d", id))
}

// writeReplica installs one pushed block replica, tmp+rename like spills.
func (w *Worker) writeReplica(id int64, frame []byte) error {
	path := w.replicaPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// dropJob garbage-collects one job's spill directory and remembers the
// job so late spills are dropped too.
func (w *Worker) dropJob(jobID int64) {
	w.mu.Lock()
	if w.dropped == nil {
		w.dropped = make(map[int64]bool)
	}
	w.dropped[jobID] = true
	w.mu.Unlock()
	os.RemoveAll(filepath.Join(w.dir, fmt.Sprintf("job%d", jobID)))
}

// readSpill reads back one of this worker's own spills (a reducer whose
// source is itself skips the network).
func (w *Worker) readSpill(jobID int64, task, attempt, reduce int) ([]mapreduce.Pair, error) {
	frame, err := os.ReadFile(w.spillPath(jobID, task, attempt, reduce))
	if err != nil {
		return nil, err
	}
	return mapreduce.DecodeShard(frame)
}

// shardServer serves this worker's data plane: spilled shard streams to
// reducers (chunked), block replicas to the master's push path and to
// peer map tasks, and the end-of-job spill drop.
type shardServer struct {
	w *Worker
}

// FetchChunk returns one chunk of a spilled shard stream. The fetcher
// verifies frames as they complete, so a truncated or corrupted spill
// surfaces as a torn-shard error there.
func (s *shardServer) FetchChunk(args mapreduce.FetchChunkArgs, reply *mapreduce.FetchChunkReply) error {
	f, err := os.Open(s.w.spillPath(args.JobID, args.Task, args.Attempt, args.Reduce))
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if args.Offset < 0 || args.Offset > size {
		return fmt.Errorf("worker: chunk offset %d outside spill of %d bytes", args.Offset, size)
	}
	max := args.MaxBytes
	if max <= 0 || int64(max) > size-args.Offset {
		max = int(size - args.Offset)
	}
	buf := make([]byte, max)
	n, err := f.ReadAt(buf, args.Offset)
	if err != nil && err != io.EOF {
		return err
	}
	reply.Data = buf[:n]
	reply.EOF = args.Offset+int64(n) >= size
	return nil
}

// PushBlock installs a block replica pushed by the master's placement
// layer. The frame is verified before it is accepted: a replica store
// never holds bytes it cannot later vouch for.
func (s *shardServer) PushBlock(args mapreduce.PushBlockArgs, reply *mapreduce.PushBlockReply) error {
	if _, err := mapreduce.DecodeBlockFrame(args.Frame); err != nil {
		return err
	}
	return s.w.writeReplica(args.ID, args.Frame)
}

// ReadBlock serves one replica frame to a peer map task (or back to the
// master). The reader verifies the frame.
func (s *shardServer) ReadBlock(args mapreduce.ReadBlockArgs, reply *mapreduce.ReadBlockReply) error {
	frame, err := os.ReadFile(s.w.replicaPath(args.ID))
	if err != nil {
		return err
	}
	reply.Frame = frame
	return nil
}

// DropJob garbage-collects a finished job's spill directory.
func (s *shardServer) DropJob(args mapreduce.DropJobArgs, reply *mapreduce.DropJobReply) error {
	s.w.dropJob(args.JobID)
	return nil
}
