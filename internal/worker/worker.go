// Package worker implements the worker side of the distributed runtime:
// a process that registers with a master over RPC, heartbeats under a
// lease, long-polls for map and reduce tasks, executes them against split
// records shipped from the master's DFS, spills intermediate shards to a
// local directory, and serves those spills to reducers. A worker holds no
// job state of its own — everything it needs to run a task arrives in the
// assignment (job kind, configuration, shard sources), so a worker that
// dies is replaced by re-issuing its tasks elsewhere, exactly as in
// Hadoop's tasktracker model.
package worker

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/mapreduce"
)

// Config configures one worker process.
type Config struct {
	// Master is the master's RPC address (required).
	Master string
	// Dir is the spill directory for intermediate shards. Empty means a
	// fresh temporary directory, removed on Stop.
	Dir string
	// Tasks is the number of concurrently executing tasks (default 2).
	Tasks int
	// Listen is the shard-serving listen address (default "127.0.0.1:0").
	Listen string
	// FakePID, when nonzero, is reported to the master instead of the real
	// process id. Tests running workers as goroutines use it to give each
	// in-process worker a distinct identity for the kill harness.
	FakePID int
}

func (c Config) withDefaults() Config {
	if c.Tasks <= 0 {
		c.Tasks = 2
	}
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	return c
}

// Worker is a running worker instance.
type Worker struct {
	cfg     Config
	ln      net.Listener
	dir     string
	ownsDir bool

	mu     sync.Mutex
	client *rpc.Client
	id     int64
	hb     time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start launches a worker: it opens the shard server, registers with the
// master (failing fast if the master is unreachable), and spawns the
// heartbeat loop and task executors. The worker runs until Stop.
func Start(cfg Config) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Master == "" {
		return nil, fmt.Errorf("worker: no master address")
	}
	dir, ownsDir := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "shadoop-worker-")
		if err != nil {
			return nil, err
		}
		dir, ownsDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	w := &Worker{cfg: cfg, ln: ln, dir: dir, ownsDir: ownsDir, stop: make(chan struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName(mapreduce.ShardService, &shardServer{w: w}); err != nil {
		ln.Close()
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	if err := w.connect(); err != nil {
		ln.Close()
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < cfg.Tasks; i++ {
		w.wg.Add(1)
		go w.executorLoop()
	}
	return w, nil
}

// Addr returns the worker's shard-serving address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// ID returns the worker id the master assigned at (re-)registration.
func (w *Worker) ID() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Dir returns the worker's spill directory.
func (w *Worker) Dir() string { return w.dir }

// Stop shuts the worker down: loops exit, the shard listener closes, and
// a temporary spill directory is removed. It does not wait for an
// in-flight task attempt to finish executing — from the master's point of
// view that is indistinguishable from a crash, which is the point: the
// lease expires and the task is re-issued.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.ln.Close()
		w.mu.Lock()
		if w.client != nil {
			w.client.Close()
			w.client = nil
		}
		w.mu.Unlock()
		if w.ownsDir {
			os.RemoveAll(w.dir)
		}
	})
}

// Wait blocks until the worker's loops have exited (after Stop).
func (w *Worker) Wait() { w.wg.Wait() }

// connect dials the master and registers, replacing any previous client.
func (w *Worker) connect() error {
	client, err := rpc.Dial("tcp", w.cfg.Master)
	if err != nil {
		return err
	}
	pid := w.cfg.FakePID
	if pid == 0 {
		pid = os.Getpid()
	}
	var reply mapreduce.RegisterReply
	args := mapreduce.RegisterArgs{Addr: w.Addr(), PID: pid}
	if err := client.Call(mapreduce.MasterService+".Register", args, &reply); err != nil {
		client.Close()
		return err
	}
	w.mu.Lock()
	if w.client != nil {
		w.client.Close()
	}
	w.client = client
	w.id = reply.WorkerID
	w.hb = reply.HeartbeatEvery
	w.mu.Unlock()
	return nil
}

// session snapshots the current client and worker id.
func (w *Worker) session() (*rpc.Client, int64, time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client, w.id, w.hb
}

// reconnect re-establishes the master session after a connection failure
// or a lease the master expired, retrying until it succeeds or the worker
// stops.
func (w *Worker) reconnect() {
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		if err := w.connect(); err == nil {
			return
		}
		_, _, hb := w.session()
		if hb <= 0 {
			hb = 100 * time.Millisecond
		}
		select {
		case <-w.stop:
			return
		case <-time.After(hb):
		}
	}
}

// heartbeatLoop renews the worker's lease. A failed call or a negative
// acknowledgement (the master expired our lease while we were alive but
// slow) triggers re-registration under a fresh id.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		client, id, hb := w.session()
		if hb <= 0 {
			hb = 100 * time.Millisecond
		}
		select {
		case <-w.stop:
			return
		case <-time.After(hb):
		}
		if client == nil {
			w.reconnect()
			continue
		}
		var reply mapreduce.HeartbeatReply
		err := client.Call(mapreduce.MasterService+".Heartbeat", mapreduce.HeartbeatArgs{WorkerID: id}, &reply)
		if err != nil || !reply.OK {
			select {
			case <-w.stop:
				return
			default:
			}
			w.reconnect()
		}
	}
}

// executorLoop pulls and executes tasks until the worker stops. The
// GetTask long-poll doubles as a heartbeat, so a busy worker polling for
// its next task never expires.
func (w *Worker) executorLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		client, id, hb := w.session()
		if client == nil {
			if hb <= 0 {
				hb = 100 * time.Millisecond
			}
			select {
			case <-w.stop:
				return
			case <-time.After(hb):
			}
			continue
		}
		var t mapreduce.TaskAssignment
		if err := client.Call(mapreduce.MasterService+".GetTask", mapreduce.GetTaskArgs{WorkerID: id}, &t); err != nil {
			// The heartbeat loop owns reconnection; just back off.
			select {
			case <-w.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if t.Phase == mapreduce.TaskNone {
			continue
		}
		var res mapreduce.TaskDoneArgs
		switch t.Phase {
		case mapreduce.TaskMap:
			res = w.runMap(client, id, &t)
		case mapreduce.TaskReduce:
			res = w.runReduce(id, &t)
		default:
			continue
		}
		var ack mapreduce.TaskDoneReply
		_ = client.Call(mapreduce.MasterService+".TaskDone", res, &ack)
	}
}

// fail fills a TaskDoneArgs failure report.
func fail(res *mapreduce.TaskDoneArgs, err error) mapreduce.TaskDoneArgs {
	res.Err = err.Error()
	res.Transient = fault.IsTransient(err)
	return *res
}

// runMap executes one map attempt: read the split from the master,
// rebuild the job kind, run the shared attempt body, spill one sealed
// shard frame per reducer, and report totals plus the metrics buffer.
func (w *Worker) runMap(client *rpc.Client, id int64, t *mapreduce.TaskAssignment) mapreduce.TaskDoneArgs {
	res := mapreduce.TaskDoneArgs{WorkerID: id, DispatchID: t.DispatchID}
	var ws mapreduce.WireSplit
	args := mapreduce.ReadSplitArgs{JobID: t.JobID, Task: t.Task}
	if err := client.Call(mapreduce.MasterService+".ReadSplit", args, &ws); err != nil {
		return fail(&res, fault.Transient(err))
	}
	split := ws.Split()
	kf, err := mapreduce.BuildKind(t.JobKind, t.Conf)
	if err != nil {
		return fail(&res, err) // permanent: the worker cannot run this kind
	}
	shards, out, tm, err := mapreduce.ExecMapAttempt(kf, t.JobKind, t.Conf, split, t.NumShards, t.Attempt)
	if err != nil {
		return fail(&res, err)
	}
	// Every reducer's shard file is written, even when empty, so a fetch
	// never has to distinguish "no pairs" from "spill lost".
	for ri := 0; ri < t.NumShards; ri++ {
		var pairs []mapreduce.Pair
		if ri < len(shards) {
			pairs = shards[ri]
		}
		frame, err := mapreduce.EncodeShard(pairs)
		if err != nil {
			return fail(&res, err)
		}
		if err := w.writeSpill(t.JobID, t.Task, t.Attempt, ri, frame); err != nil {
			return fail(&res, fault.Transient(err))
		}
	}
	pairs, bytes := mapreduce.ShardTotals(shards)
	res.Out = out
	res.Metrics = tm.Export()
	res.RecordsIn = int64(split.NumRecords())
	res.Pairs = pairs
	res.Bytes = bytes
	return res
}

// runReduce executes one reduce attempt: fetch every map task's shard
// from its holder (in map-task order, matching the in-process shuffle),
// group, run the shared reduce body, and report the partition output. A
// shard that cannot be fetched — dead holder, torn spill — is reported in
// LostMaps so the master re-runs those map tasks before the retry.
func (w *Worker) runReduce(id int64, t *mapreduce.TaskAssignment) mapreduce.TaskDoneArgs {
	res := mapreduce.TaskDoneArgs{WorkerID: id, DispatchID: t.DispatchID}
	kf, err := mapreduce.BuildKind(t.JobKind, t.Conf)
	if err != nil {
		return fail(&res, err)
	}
	taskShards := make([][]mapreduce.Pair, len(t.Sources))
	var lost []int
	for i, src := range t.Sources {
		var pairs []mapreduce.Pair
		var err error
		if src.Addr == w.Addr() {
			pairs, err = w.readSpill(t.JobID, src.Task, src.Attempt, t.Task)
		} else {
			pairs, err = mapreduce.FetchShardFrom(src.Addr, t.JobID, src.Task, src.Attempt, t.Task)
		}
		if err != nil {
			lost = append(lost, src.Task)
			continue
		}
		taskShards[i] = pairs
	}
	if len(lost) > 0 {
		res.LostMaps = lost
		return fail(&res, fault.Transientf("worker: reduce %d lost shards of %d map task(s)", t.Task, len(lost)))
	}
	out, valuesIn, tm, err := mapreduce.ExecReduceAttempt(kf, t.JobKind, t.Conf, mapreduce.GroupShards(taskShards), t.Attempt)
	if err != nil {
		return fail(&res, err)
	}
	res.Out = out
	res.Metrics = tm.Export()
	res.RecordsIn = valuesIn
	return res
}

// spillPath lays the spill directory out as job<J>/m<task>.a<attempt>.r<reducer>.
func (w *Worker) spillPath(jobID int64, task, attempt, reduce int) string {
	return filepath.Join(w.dir, fmt.Sprintf("job%d", jobID), fmt.Sprintf("m%d.a%d.r%d", task, attempt, reduce))
}

// writeSpill persists one sealed shard frame via tmp+rename, so a crash
// mid-write leaves no half-visible file: the fetch either finds a whole
// frame (whose seal it still verifies) or no file at all.
func (w *Worker) writeSpill(jobID int64, task, attempt, reduce int, frame []byte) error {
	path := w.spillPath(jobID, task, attempt, reduce)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readSpill reads back one of this worker's own spills (a reducer whose
// source is itself skips the network).
func (w *Worker) readSpill(jobID int64, task, attempt, reduce int) ([]mapreduce.Pair, error) {
	frame, err := os.ReadFile(w.spillPath(jobID, task, attempt, reduce))
	if err != nil {
		return nil, err
	}
	return mapreduce.DecodeShard(frame)
}

// shardServer serves this worker's spilled shard frames to reducers.
type shardServer struct {
	w *Worker
}

// Fetch returns one sealed spill frame. The fetcher unseals it, so a
// truncated or corrupted spill surfaces as a torn-shard error there.
func (s *shardServer) Fetch(args mapreduce.FetchShardArgs, reply *FetchShardReply) error {
	frame, err := os.ReadFile(s.w.spillPath(args.JobID, args.Task, args.Attempt, args.Reduce))
	if err != nil {
		return err
	}
	reply.Frame = frame
	return nil
}

// FetchShardReply aliases the wire type so the RPC method signature stays
// in the worker package.
type FetchShardReply = mapreduce.FetchShardReply
