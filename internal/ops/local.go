package ops

import (
	"fmt"
	"slices"
	"sort"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/rtree"
	"spatialhadoop/internal/sindex"
)

// Local executors: the serving layer's in-memory fast path for range and
// kNN queries over indexed files. They walk the same splits, apply the
// same pruning geometry (Split.Cover), follow the same two-round kNN
// protocol, and sort candidates with the same canonical comparator as the
// MapReduce jobs in this package — so a query answered locally is
// byte-identical to one answered by a job, and the planner is free to
// route per request. What differs is the execution substrate: records come
// from pinned memory-resident partitions (LocalPartition) supplied by a
// LocalSource instead of from scheduled map tasks.

// LocalPartition is one partition's records decoded and indexed in memory:
// the unit the serving layer's memory tier pins, evicts, and invalidates.
type LocalPartition struct {
	// Key is the partition key (Cell.Key()).
	Key string
	// Pts holds the partition's decoded points in canonical (X, then Y)
	// order; Recs the corresponding record texts, index-aligned with Pts.
	Pts  []geom.Point
	Recs []string
	// Tree indexes Pts; entry IDs are indices into Pts/Recs.
	Tree *rtree.Tree
	// Frag holds every point's pre-encoded JSON object ({"x":..,"y":..},
	// exactly as encoding/json renders it); point i's fragment is
	// Frag[FragOff[i]:FragOff[i+1]]. Because Pts is sorted canonically,
	// a range response can be assembled by merging partitions and copying
	// fragments instead of re-formatting floats per query — float
	// formatting dominated the serve CPU profile. Nil when any coordinate
	// has no JSON encoding (NaN/Inf); consumers must then fall back.
	Frag    []byte
	FragOff []int32
	// Bytes estimates the pinned footprint for the memory tier's budget.
	Bytes int64
}

// PinSplit decodes a split's blocks into a memory-resident partition:
// points and records jointly sorted into canonical (X, then Y) order, an
// R-tree over the sorted points, and per-point response fragments.
func PinSplit(sp *mapreduce.Split) (*LocalPartition, error) {
	var (
		pts  []geom.Point
		recs []string
	)
	for _, b := range sp.Blocks {
		bp, err := b.Points()
		if err != nil {
			return nil, err
		}
		pts = append(pts, bp...)
		recs = append(recs, b.Records()...)
	}
	if len(pts) != len(recs) {
		return nil, fmt.Errorf("ops: partition %q: %d points vs %d records", sp.Partition, len(pts), len(recs))
	}
	// Canonical order. The (pt, rec) pairing is preserved, so kNN's
	// (dist, record) candidate comparator is unaffected; equal points may
	// land in either order, which no consumer can observe.
	perm := make([]int, len(pts))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		a, b := pts[perm[i]], pts[perm[j]]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	sortedPts := make([]geom.Point, len(pts))
	sortedRecs := make([]string, len(recs))
	for i, p := range perm {
		sortedPts[i] = pts[p]
		sortedRecs[i] = recs[p]
	}
	pts, recs = sortedPts, sortedRecs

	frag, off := buildFragments(pts)
	var bytes int64
	for _, r := range recs {
		bytes += int64(len(r))
	}
	// Points (2 floats), record headers, ~3 words per tree entry, and the
	// fragment arena.
	bytes += int64(len(pts))*(16+16+48) + int64(len(frag)) + int64(4*len(off))
	return &LocalPartition{
		Key:     sp.Partition,
		Pts:     pts,
		Recs:    recs,
		Tree:    rtree.BulkPoints(pts, rtree.DefaultFanout),
		Frag:    frag,
		FragOff: off,
		Bytes:   bytes,
	}, nil
}

// buildFragments pre-encodes each point's JSON object. A point that
// encoding/json would reject (NaN/Inf) disables fragments for the whole
// partition ((nil, nil)); range encoding then falls back to the
// marshal-equivalent slow path.
func buildFragments(pts []geom.Point) ([]byte, []int32) {
	frag := make([]byte, 0, 24*len(pts))
	off := make([]int32, len(pts)+1)
	var err error
	for i, p := range pts {
		frag = append(frag, `{"x":`...)
		if frag, err = geomio.AppendJSONFloat(frag, p.X); err != nil {
			return nil, nil
		}
		frag = append(frag, `,"y":`...)
		if frag, err = geomio.AppendJSONFloat(frag, p.Y); err != nil {
			return nil, nil
		}
		frag = append(frag, '}')
		off[i+1] = int32(len(frag))
	}
	return frag, off
}

// LocalSource supplies the executors with pinned partitions and the
// per-file spatial bitmap filter. The serving layer's memory tier is the
// production implementation.
type LocalSource interface {
	// Pin returns the memory-resident form of a split's partition,
	// loading it if necessary.
	Pin(sp *mapreduce.Split) (*LocalPartition, error)
	// Filter returns the file's partition bitmap filter, or nil when none
	// is maintained (executors then prune on Cover geometry alone).
	Filter() *sindex.SFilter
}

// LocalStats describes one local execution for explain output and the
// hot-partition report. Mirroring the MapReduce report, the partition
// counts describe the final round (so consulted+pruned == total); sFilter
// counts accumulate across rounds.
type LocalStats struct {
	// PartitionsTotal/Consulted/Pruned partition the final round's splits:
	// every split was either searched or pruned (by geometry or filter).
	PartitionsTotal     int
	PartitionsConsulted int
	PartitionsPruned    int
	// SFilterHits counts bitmap probes that passed (partition searched);
	// SFilterSkips counts partitions the bitmap proved empty for the
	// query — pruning the Cover test alone would have missed.
	SFilterHits  int
	SFilterSkips int
	// Matches counts candidate records the executor touched.
	Matches int
	// Rounds is 1 or 2 (kNN protocol); always 1 for range.
	Rounds int
}

// localIndexed opens the file and requires a global index: the local
// executors rely on per-partition splits and partition keys.
func localIndexed(sys *core.System, file string) (*core.IndexedFile, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, err
	}
	if f.Index == nil {
		return nil, fmt.Errorf("ops: local execution needs an indexed file, %q is a heap", file)
	}
	return f, nil
}

// LocalMatch is one partition's contribution to a range query: the pinned
// partition plus the matched entry IDs in ascending order. Because pinned
// points are canonically sorted, ascending IDs mean each partition's
// matches stream out already in (X, then Y) order — a response is a k-way
// merge of these streams, no global sort.
type LocalMatch struct {
	Part *LocalPartition
	IDs  []int
}

// LocalRangeMatches answers a range query from pinned partitions,
// byte-equivalent to RangeQueryPoints: same Cover pruning, plus bitmap
// pruning, and exactly one owner per point record (the loader assigns each
// point to a single cell), so no dedup is needed. Partitions with no
// matches are omitted.
func LocalRangeMatches(sys *core.System, file string, src LocalSource, query geom.Rect) ([]LocalMatch, *LocalStats, error) {
	f, err := localIndexed(sys, file)
	if err != nil {
		return nil, nil, err
	}
	splits := f.Splits()
	stats := &LocalStats{PartitionsTotal: len(splits), Rounds: 1}
	hot := sys.Hotness()
	sf := src.Filter()
	var out []LocalMatch
	for _, sp := range splits {
		if !sp.Cover().Intersects(query) {
			stats.PartitionsPruned++
			hot.RecordPrune(file, sp.Partition)
			continue
		}
		if sf != nil {
			if !sf.MayIntersect(sp.Partition, query) {
				stats.PartitionsPruned++
				stats.SFilterSkips++
				hot.RecordPrune(file, sp.Partition)
				continue
			}
			stats.SFilterHits++
		}
		part, err := src.Pin(sp)
		if err != nil {
			return nil, nil, err
		}
		stats.PartitionsConsulted++
		hot.RecordScan(file, sp.Partition)
		hot.AddRecords(file, sp.Partition, int64(len(part.Recs)))
		ids := part.Tree.Search(query, nil)
		slices.Sort(ids)
		stats.Matches += len(ids)
		hot.AddMatches(file, sp.Partition, int64(len(ids)))
		if len(ids) > 0 {
			out = append(out, LocalMatch{Part: part, IDs: ids})
		}
	}
	return out, stats, nil
}

// LocalRangePoints is LocalRangeMatches materialized to points (partition
// order, each partition's matches in canonical order).
func LocalRangePoints(sys *core.System, file string, src LocalSource, query geom.Rect) ([]geom.Point, *LocalStats, error) {
	matches, stats, err := LocalRangeMatches(sys, file, src, query)
	if err != nil {
		return nil, nil, err
	}
	var out []geom.Point
	for _, m := range matches {
		for _, id := range m.IDs {
			out = append(out, m.Part.Pts[id])
		}
	}
	return out, stats, nil
}

// LocalKNNPoints answers a kNN query from pinned partitions with the same
// two-round protocol as KNNCtx: round one searches the smallest partition
// whose cover contains q; if the correctness circle escapes it (or fewer
// than k candidates were found) a second round searches every partition
// the circle may reach. Candidates are tie-complete (NearestWithTies) and
// sorted with the canonical (dist, record) comparator before truncation,
// exactly as the job's reduce does, so both engines pick the same k points.
func LocalKNNPoints(sys *core.System, file string, src LocalSource, q geom.Point, k int) ([]geom.Point, *LocalStats, error) {
	f, err := localIndexed(sys, file)
	if err != nil {
		return nil, nil, err
	}
	splits := f.Splits()
	stats := &LocalStats{}
	hot := sys.Hotness()
	sf := src.Filter()

	// round searches the kept splits, recording scan/prune hotness for
	// every split exactly as withHeat does per job, and returns the
	// canonically sorted, k-truncated candidates.
	round := func(kept map[*mapreduce.Split]bool, probe geom.Rect, useProbe bool) ([]knnCandidate, error) {
		stats.Rounds++
		stats.PartitionsTotal = len(splits)
		stats.PartitionsConsulted, stats.PartitionsPruned = 0, 0
		var cands []knnCandidate
		for _, sp := range splits {
			if !kept[sp] {
				stats.PartitionsPruned++
				hot.RecordPrune(file, sp.Partition)
				continue
			}
			if useProbe && sf != nil {
				if !sf.MayIntersect(sp.Partition, probe) {
					stats.PartitionsPruned++
					stats.SFilterSkips++
					hot.RecordPrune(file, sp.Partition)
					continue
				}
				stats.SFilterHits++
			}
			part, err := src.Pin(sp)
			if err != nil {
				return nil, err
			}
			stats.PartitionsConsulted++
			hot.RecordScan(file, sp.Partition)
			hot.AddRecords(file, sp.Partition, int64(len(part.Recs)))
			var matched int64
			for _, nb := range part.Tree.NearestWithTies(q, k) {
				cands = append(cands, knnCandidate{dist: nb.Dist, rec: part.Recs[nb.Entry.ID]})
				matched++
			}
			stats.Matches += int(matched)
			hot.AddMatches(file, sp.Partition, matched)
		}
		sort.Slice(cands, func(i, j int) bool { return lessCandidate(cands[i], cands[j]) })
		if len(cands) > k {
			cands = cands[:k]
		}
		return cands, nil
	}

	// Round 1: the smallest-area partition covering q, or everything.
	round1 := func() map[*mapreduce.Split]bool {
		var best *mapreduce.Split
		for _, s := range splits {
			if s.Cover().ContainsPoint(q) && (best == nil || s.Cover().Area() < best.Cover().Area()) {
				best = s
			}
		}
		kept := make(map[*mapreduce.Split]bool, len(splits))
		if best == nil {
			for _, s := range splits {
				kept[s] = true
			}
		} else {
			kept[best] = true
		}
		return kept
	}
	r1 := round1()
	cands, err := round(r1, geom.Rect{}, false)
	if err != nil {
		return nil, nil, err
	}

	needSecond := len(cands) < k && k > 0
	if !needSecond && len(cands) > 0 {
		radius := cands[min(k, len(cands))-1].dist
		circle := geom.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
		scannedAll := len(r1) == len(splits)
		ownsCircle := false
		if f.Index.Disjoint() && len(r1) == 1 {
			for sp := range r1 {
				ownsCircle = sp.MBR.ContainsRect(circle)
			}
		}
		if !scannedAll && !ownsCircle {
			needSecond = true
		}
	}
	if needSecond {
		radius := 0.0
		if len(cands) >= k && k > 0 {
			radius = cands[k-1].dist
		}
		kept := make(map[*mapreduce.Split]bool, len(splits))
		circle := geom.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
		for _, s := range splits {
			if radius == 0 || s.Cover().MinDistPoint(q) <= radius {
				kept[s] = true
			}
		}
		// The bitmap probe rectangle is the circle's bounding box: a
		// record within radius of q lies inside it, so an empty bitmap
		// range proves the partition contributes nothing.
		cands, err = round(kept, circle, radius > 0)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	pts := make([]geom.Point, len(cands))
	for i, c := range cands {
		p, err := geomio.DecodePoint(c.rec)
		if err != nil {
			return nil, nil, err
		}
		pts[i] = p
	}
	return pts, stats, nil
}
