package ops

import (
	"math"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

// bruteANN is the O(n^2) oracle.
func bruteANN(pts []geom.Point) map[geom.Point]float64 {
	out := make(map[geom.Point]float64, len(pts))
	for i, p := range pts {
		best := math.Inf(1)
		selfSkipped := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Equal(p) && !selfSkipped {
				// A coincident duplicate is a neighbour at distance 0;
				// only the point itself is excluded, which index i does.
				best = 0
				selfSkipped = true
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		out[p] = best
	}
	return out
}

func TestAllNearestNeighborsMatchesBrute(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, tc := range []struct {
		dist datagen.Distribution
		tech sindex.Technique
	}{
		{datagen.Uniform, sindex.Grid},
		{datagen.Clustered, sindex.STRPlus},
		{datagen.Gaussian, sindex.QuadTree},
	} {
		pts := datagen.Points(tc.dist, 2000, area, 61)
		want := bruteANN(pts)
		sys := newSys()
		if _, err := sys.LoadPoints("pts", pts, tc.tech); err != nil {
			t.Fatal(err)
		}
		got, _, err := AllNearestNeighbors(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("%v/%v: %d results for %d points", tc.dist, tc.tech, len(got), len(pts))
		}
		for _, r := range got {
			wd := want[r.Point]
			if math.Abs(r.Dist-wd) > 1e-9*math.Max(1, wd) {
				t.Fatalf("%v/%v: NN dist of %v = %g, want %g",
					tc.dist, tc.tech, r.Point, r.Dist, wd)
			}
			if d := r.Point.Dist(r.Neighbor); math.Abs(d-r.Dist) > 1e-9 {
				t.Fatalf("reported distance %g inconsistent with neighbour %v (%g)", r.Dist, r.Neighbor, d)
			}
		}
	}
}

func TestAllNearestNeighborsDuplicates(t *testing.T) {
	pts := []geom.Point{{X: 10, Y: 10}, {X: 10, Y: 10}, {X: 500, Y: 500}, {X: 900, Y: 900}}
	sys := newSys()
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	got, _, err := AllNearestNeighbors(sys, "pts")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Point.Equal(geom.Pt(10, 10)) && r.Dist != 0 {
			t.Errorf("duplicate point should have NN distance 0, got %g", r.Dist)
		}
	}
}

func TestAllNearestNeighborsRequiresDisjoint(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 200, geom.NewRect(0, 0, 100, 100), 3)
	sys := newSys()
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := AllNearestNeighbors(sys, "pts"); err == nil {
		t.Error("expected error for overlapping index")
	}
}
