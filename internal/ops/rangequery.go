// Package ops implements the operations layer of SpatialHadoop (the
// SIGMOD'14 system paper): range queries, k-nearest-neighbour queries and
// distributed spatial join. Each operation follows the same shape as the
// computational geometry suite: a filter step prunes partitions using the
// global index, and map tasks process the survivors with local indexes.
package ops

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// Counter names reported by the operations; like every TaskContext
// counter they are buffered per task and merged once at task end.
const (
	// CounterRangeBlocksScanned counts blocks whose local index was probed.
	CounterRangeBlocksScanned = "ops.range.blocks.scanned"
	// CounterRangeMatches counts records matching the query predicate.
	CounterRangeMatches = "ops.range.matches"
	// CounterDedupDropped counts replicated matches suppressed by the
	// reference-point rule (disjoint partitioning only).
	CounterDedupDropped = "ops.dedup.dropped"
	// CounterJoinCandidates counts MBR-intersecting pairs the plane sweep
	// reported before deduplication.
	CounterJoinCandidates = "ops.join.candidates"
)

// RangeQueryPoints returns all points of the (indexed or heap) file that
// lie inside query. With an indexed file, the filter step prunes every
// partition whose boundary misses the query, and map tasks use the local
// R-tree indexes; with a heap file every block is scanned.
func RangeQueryPoints(sys *core.System, file string, query geom.Rect) ([]geom.Point, *mapreduce.Report, error) {
	return RangeQueryPointsTo(sys, file, query, file+".range.out")
}

// RangeQueryPointsTo is RangeQueryPoints writing its result to the given
// output file. Concurrent queries over the same input must use distinct
// output names (the serving layer allocates one per request); the default
// shared name is only safe for one query at a time.
func RangeQueryPointsTo(sys *core.System, file string, query geom.Rect, out string) ([]geom.Point, *mapreduce.Report, error) {
	return RangeQueryPointsCtx(context.Background(), sys, file, query, out)
}

// RangeQueryPointsCtx is RangeQueryPointsTo under a context: the job runs
// through RunCtx (admission, cancellation, request-trace spans), and the
// query's partition accesses feed the system's hot-partition telemetry.
func RangeQueryPointsCtx(ctx context.Context, sys *core.System, file string, query geom.Rect, out string) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	job := &mapreduce.Job{
		Name:   "range-points",
		Kind:   "range-points",
		Conf:   map[string]string{confRangeQuery: geomio.EncodeRect(query)},
		Splits: f.Splits(),
		Filter: withHeat(sys, file, func(splits []*mapreduce.Split) []*mapreduce.Split {
			var keep []*mapreduce.Split
			for _, s := range splits {
				// Cover, not MBR: overlapping techniques hold records
				// outside their sample-derived boundary.
				if s.Cover().Intersects(query) {
					keep = append(keep, s)
				}
			}
			return keep
		}),
		// Same body a worker rebuilds from the kind, resolving local
		// indexes through the system's per-block cache.
		Map:    rangePointsMap(query, sys.LocalIndex),
		Output: out,
	}
	rep, err := sys.Cluster().RunCtx(ctx, job)
	if err != nil {
		return nil, nil, err
	}
	foldPartitionHeat(sys, file, rep)
	pts, err := sys.ReadPointsCtx(ctx, out)
	if err != nil {
		return nil, nil, err
	}
	return pts, rep, nil
}

// RangeQueryRegions returns all regions whose MBR intersects query.
// Replicated records (disjoint partitioning) are deduplicated with the
// reference-point rule: a region is reported only by the partition that
// contains the top-left corner of the intersection of its MBR with the
// query, so each match is produced exactly once.
func RangeQueryRegions(sys *core.System, file string, query geom.Rect) ([]geom.Region, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	disjoint := f.Index != nil && f.Index.Disjoint()
	var space geom.Rect
	if disjoint {
		space = f.Index.Space
	}
	out := file + ".range.out"
	job := &mapreduce.Job{
		Name:   "range-regions",
		Splits: f.Splits(),
		Filter: func(splits []*mapreduce.Split) []*mapreduce.Split {
			var keep []*mapreduce.Split
			for _, s := range splits {
				// Cover, not MBR: a region assigned by least enlargement
				// can extend past the sample-derived boundary.
				if s.Cover().Intersects(query) {
					keep = append(keep, s)
				}
			}
			return keep
		},
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			for _, blk := range split.Blocks {
				regs, err := BlockRegions(blk)
				if err != nil {
					return err
				}
				recs := blk.Records()
				for i, rg := range regs {
					b := rg.Bounds()
					if !b.Intersects(query) {
						continue
					}
					if disjoint {
						ref := geom.Point{X: b.Intersect(query).MinX, Y: b.Intersect(query).MinY}
						if !ownsRef(split.MBR, space, ref) {
							ctx.Inc(CounterDedupDropped, 1)
							continue
						}
					}
					ctx.Inc(CounterRangeMatches, 1)
					ctx.Write(recs[i])
				}
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	regs, err := sys.ReadRegions(out)
	if err != nil {
		return nil, nil, err
	}
	return regs, rep, nil
}

// BlockRegions returns the block's records decoded as regions, cached in
// the block's generic decoded-payload slot: each region block is parsed
// once per file lifetime instead of once per map attempt. The returned
// slice is shared and must not be modified.
func BlockRegions(b *dfs.Block) ([]geom.Region, error) {
	v, err := b.Payload(func(recs []string) (any, error) {
		out := make([]geom.Region, len(recs))
		for i, r := range recs {
			rg, err := geomio.DecodeRegion(r)
			if err != nil {
				return nil, err
			}
			out[i] = rg
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]geom.Region), nil
}

// ownsRef reports whether cell owns the reference point under the
// half-open tiling rule: a cell owns its min edges, and the half-open
// interval is closed only where the cell's max edge coincides with the
// global space boundary. An *interior* shared max edge belongs exclusively
// to the neighbouring cell — closing it on both sides would let two cells
// of a disjoint tiling own the same reference point and double-report the
// record (found by the property soak: a region whose query overlap has its
// min corner exactly on a shared quadtree cell edge was reported by both
// cells, one via half-open containment and one via a max-edge special
// case).
func ownsRef(cell, space geom.Rect, p geom.Point) bool {
	xOK := p.X >= cell.MinX && (p.X < cell.MaxX || cell.MaxX >= space.MaxX)
	yOK := p.Y >= cell.MinY && (p.Y < cell.MaxY || cell.MaxY >= space.MaxY)
	return xOK && yOK
}

// knnCandidate pairs a point record with its distance for shuffling.
type knnCandidate struct {
	dist float64
	rec  string
}

func encodeCandidate(c knnCandidate) string {
	return strconv.FormatFloat(c.dist, 'g', 17, 64) + ";" + c.rec
}

// lessCandidate is the canonical kNN candidate order: by distance, ties by
// record text. Every consumer of candidate sets — the MR reduce, the final
// merge, and the serving layer's local executor — must sort with this
// exact comparator before truncating to k, so the chosen top-k never
// depends on which R-tree shape (per-block or per-partition) produced the
// candidates.
func lessCandidate(a, b knnCandidate) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.rec < b.rec
}

func decodeCandidate(s string) (knnCandidate, error) {
	i := strings.IndexByte(s, ';')
	if i < 0 {
		return knnCandidate{}, fmt.Errorf("ops: bad knn candidate %q", s)
	}
	d, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return knnCandidate{}, err
	}
	return knnCandidate{dist: d, rec: s[i+1:]}, nil
}

// KNN returns the k nearest points to q in the file, with the two-round
// protocol of SpatialHadoop: round one processes only the partition
// containing q; if the k-th distance reaches beyond that partition's
// boundary, a second round processes every partition intersecting the
// correctness circle. The returned report is from the final round.
func KNN(sys *core.System, file string, q geom.Point, k int) ([]geom.Point, *mapreduce.Report, error) {
	return KNNTo(sys, file, q, k, file+".knn")
}

// KNNTo is KNN writing its round outputs to outPrefix+".r1" and
// outPrefix+".r2". Concurrent kNN queries over the same file must use
// distinct prefixes.
func KNNTo(sys *core.System, file string, q geom.Point, k int, outPrefix string) ([]geom.Point, *mapreduce.Report, error) {
	return KNNCtx(context.Background(), sys, file, q, k, outPrefix)
}

// KNNCtx is KNNTo under a context: both rounds run through RunCtx
// (admission, cancellation, request-trace spans) and feed the system's
// hot-partition telemetry.
func KNNCtx(ctx context.Context, sys *core.System, file string, q geom.Point, k int, outPrefix string) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	run := func(filter mapreduce.FilterFunc, out string) (*mapreduce.Report, []knnCandidate, error) {
		job := &mapreduce.Job{
			Name: "knn",
			Kind: "knn",
			Conf: map[string]string{
				confKNNQ: geomio.EncodePoint(q),
				confKNNK: strconv.Itoa(k),
			},
			Splits: f.Splits(),
			Filter: withHeat(sys, file, filter),
			Map:    knnMap(q, k, sys.LocalIndex),
			Reduce: knnReduce(k),
			Output: out,
		}
		rep, err := sys.Cluster().RunCtx(ctx, job)
		if err != nil {
			return nil, nil, err
		}
		foldPartitionHeat(sys, file, rep)
		recs, err := sys.FS().ReadAllCtx(ctx, out)
		if err != nil {
			return nil, nil, err
		}
		cands := make([]knnCandidate, 0, len(recs))
		for _, r := range recs {
			c, err := decodeCandidate(r)
			if err != nil {
				return nil, nil, err
			}
			cands = append(cands, c)
		}
		sort.Slice(cands, func(i, j int) bool { return lessCandidate(cands[i], cands[j]) })
		return rep, cands, nil
	}

	// Round 1: only the partition containing q (or, for a heap file, all
	// blocks — there is no pruning information).
	round1 := func(splits []*mapreduce.Split) []*mapreduce.Split {
		var best *mapreduce.Split
		for _, s := range splits {
			if s.Cover().ContainsPoint(q) && (best == nil || s.Cover().Area() < best.Cover().Area()) {
				best = s
			}
		}
		if best == nil {
			return splits
		}
		return []*mapreduce.Split{best}
	}
	rep, cands, err := run(round1, outPrefix+".r1")
	if err != nil {
		return nil, nil, err
	}

	needSecond := len(cands) < k
	if !needSecond && len(cands) > 0 {
		radius := cands[min(k, len(cands))-1].dist
		// If the correctness circle escapes the round-1 partition, other
		// partitions may hold closer points.
		circle := geom.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
		splits := f.Splits()
		r1 := round1(splits)
		// Round one is final only if it already scanned everything, or if
		// a single disjoint partition owns the whole correctness circle.
		// The ownership argument needs the boundary tiling (MBR) and only
		// holds for disjoint techniques: an overlapping partition's
		// rectangle containing the circle says nothing about which
		// partition holds the points inside it.
		scannedAll := len(r1) == len(splits)
		ownsCircle := f.Index != nil && f.Index.Disjoint() &&
			len(r1) == 1 && r1[0].MBR.ContainsRect(circle)
		if !scannedAll && !ownsCircle {
			needSecond = true
		}
	}
	if needSecond {
		radius := 0.0
		if len(cands) >= k {
			radius = cands[k-1].dist
		}
		filter := func(splits []*mapreduce.Split) []*mapreduce.Split {
			if radius == 0 {
				return splits
			}
			var keep []*mapreduce.Split
			for _, s := range splits {
				if s.Cover().MinDistPoint(q) <= radius {
					keep = append(keep, s)
				}
			}
			return keep
		}
		rep, cands, err = run(filter, outPrefix+".r2")
		if err != nil {
			return nil, nil, err
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	pts := make([]geom.Point, len(cands))
	for i, c := range cands {
		p, err := geomio.DecodePoint(c.rec)
		if err != nil {
			return nil, nil, err
		}
		pts[i] = p
	}
	return pts, rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
