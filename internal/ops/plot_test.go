package ops

import (
	"bytes"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

func TestPlotMatchesDirectRasterization(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 5000, area, 91)
	sys := newSys()
	f, err := sys.LoadPoints("pts", pts, sindex.Grid)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PlotConfig{Width: 64, Height: 64, Extent: f.Index.Space}
	img, _, err := Plot(sys, "pts", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Direct rasterization oracle: the set of lit pixels must coincide.
	lit := map[[2]int]bool{}
	for _, p := range pts {
		if px, py, ok := rasterize(p, cfg.Extent, cfg.Width, cfg.Height); ok {
			lit[[2]int{px, py}] = true
		}
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			on := img.GrayAt(x, y).Y > 0
			if on != lit[[2]int{x, y}] {
				t.Fatalf("pixel (%d,%d) lit=%v, oracle=%v", x, y, on, lit[[2]int{x, y}])
			}
		}
	}
}

func TestPlotExtentFiltersPartitions(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 8000, area, 93)
	sys := newSys()
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	// Zoomed-in extent: only the overlapping partitions are rendered.
	img, rep, err := Plot(sys, "pts", PlotConfig{Width: 32, Height: 32, Extent: geom.NewRect(0, 0, 120, 120)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SplitsTotal > 4 && rep.Splits == rep.SplitsTotal {
		t.Errorf("zoomed plot processed all %d partitions", rep.SplitsTotal)
	}
	any := false
	for y := 0; y < 32 && !any; y++ {
		for x := 0; x < 32; x++ {
			if img.GrayAt(x, y).Y > 0 {
				any = true
				break
			}
		}
	}
	if !any {
		t.Error("zoomed plot is blank")
	}
}

func TestPlotPNGEncoding(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 100)
	pts := datagen.Points(datagen.Gaussian, 1000, area, 95)
	sys := newSys()
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	img, _, err := Plot(sys, "pts", PlotConfig{Width: 16, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodePlotPNG(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte("\x89PNG")) {
		t.Error("not a PNG")
	}
	url, err := PlotDataURL(img)
	if err != nil || len(url) < 30 || url[:22] != "data:image/png;base64," {
		t.Errorf("bad data URL: %v %v", url[:30], err)
	}
}

func TestPlotHeapFile(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 2000, geom.NewRect(0, 0, 10, 10), 97)
	sys := newSys()
	if err := sys.LoadPointsHeap("pts", pts); err != nil {
		t.Fatal(err)
	}
	img, _, err := Plot(sys, "pts", PlotConfig{Width: 8, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	lit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if img.GrayAt(x, y).Y > 0 {
				lit++
			}
		}
	}
	if lit != 64 { // 2000 uniform points light every cell of an 8x8 grid
		t.Errorf("%d of 64 pixels lit", lit)
	}
}
