package ops

import (
	"sort"
	"testing"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/sindex"
)

func newSys() *core.System {
	return core.New(core.Config{BlockSize: 8 << 10, Workers: 8, Seed: 1})
}

func pointKey(p geom.Point) string { return geomio.EncodePoint(p) }

func TestRangeQueryPointsMatchesScan(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 4000, area, 3)
	queries := []geom.Rect{
		geom.NewRect(100, 100, 300, 250),
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(990, 990, 999, 999),
		geom.NewRect(-50, -50, -10, -10), // empty
	}
	for _, tech := range []sindex.Technique{sindex.Grid, sindex.STR, sindex.QuadTree, sindex.Hilbert} {
		sys := newSys()
		if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			var want []string
			for _, p := range pts {
				if q.ContainsPoint(p) {
					want = append(want, pointKey(p))
				}
			}
			got, rep, err := RangeQueryPoints(sys, "pts", q)
			if err != nil {
				t.Fatal(err)
			}
			gotKeys := make([]string, len(got))
			for i, p := range got {
				gotKeys[i] = pointKey(p)
			}
			sort.Strings(want)
			sort.Strings(gotKeys)
			if len(gotKeys) != len(want) {
				t.Fatalf("%v/%v: %d results, want %d", tech, q, len(gotKeys), len(want))
			}
			for i := range want {
				if gotKeys[i] != want[i] {
					t.Fatalf("%v/%v: result %d mismatch", tech, q, i)
				}
			}
			// Small queries must not touch every partition.
			if q.Area() < 1e5 && rep.SplitsTotal > 4 && rep.Splits == rep.SplitsTotal {
				t.Errorf("%v: small query processed all %d partitions", tech, rep.SplitsTotal)
			}
		}
	}
}

func TestRangeQueryHeapFileScansAll(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 100)
	pts := datagen.Points(datagen.Uniform, 2000, area, 5)
	sys := newSys()
	if err := sys.LoadPointsHeap("heap", pts); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(10, 10, 20, 20)
	got, rep, err := RangeQueryPoints(sys, "heap", q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if q.ContainsPoint(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("%d results, want %d", len(got), want)
	}
	if rep.Splits != rep.SplitsTotal {
		t.Error("heap file has no pruning information; all blocks must be read")
	}
}

func TestRangeQueryRegionsDeduplicates(t *testing.T) {
	area := geom.NewRect(0, 0, 400, 400)
	polys := datagen.RandomPolygons(300, 5, 30, area, 7)
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	q := geom.NewRect(100, 100, 320, 300)
	var want int
	for _, rg := range regions {
		if rg.Bounds().Intersects(q) {
			want++
		}
	}
	for _, tech := range []sindex.Technique{sindex.Grid, sindex.QuadTree, sindex.STR} {
		sys := newSys()
		if _, err := sys.LoadRegions("regs", regions, tech); err != nil {
			t.Fatal(err)
		}
		got, _, err := RangeQueryRegions(sys, "regs", q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("%v: %d results, want %d (replication dedup broken?)", tech, len(got), want)
		}
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 3000, area, 11)
	sys := newSys()
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q geom.Point
		k int
	}{
		{geom.Pt(500, 500), 10},
		{geom.Pt(1, 1), 5},       // corner
		{geom.Pt(2000, 2000), 7}, // outside the space entirely
		{geom.Pt(333.3, 777.7), 1},
		{geom.Pt(500, 500), 3000}, // k = n
	} {
		got, _, err := KNN(sys, "pts", tc.q, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = p.Dist(tc.q)
		}
		sort.Float64s(dists)
		k := tc.k
		if k > len(pts) {
			k = len(pts)
		}
		if len(got) != k {
			t.Fatalf("q=%v k=%d: got %d results", tc.q, tc.k, len(got))
		}
		for i, p := range got {
			if d := p.Dist(tc.q) - dists[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("q=%v k=%d: neighbour %d dist %g, want %g", tc.q, tc.k, i, p.Dist(tc.q), dists[i])
			}
		}
	}
}

func joinOracle(a, b []geom.Region) int {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if x.Bounds().Intersects(y.Bounds()) {
				n++
			}
		}
	}
	return n
}

func TestSpatialJoinIndexedMatchesOracle(t *testing.T) {
	area := geom.NewRect(0, 0, 500, 500)
	aPolys := datagen.RandomPolygons(150, 5, 20, area, 13)
	bPolys := datagen.RandomPolygons(120, 4, 25, area, 17)
	a := make([]geom.Region, len(aPolys))
	for i, pg := range aPolys {
		a[i] = geom.RegionOf(pg)
	}
	b := make([]geom.Region, len(bPolys))
	for i, pg := range bPolys {
		b[i] = geom.RegionOf(pg)
	}
	want := joinOracle(a, b)
	for _, tech := range []sindex.Technique{sindex.Grid, sindex.STR, sindex.QuadTree} {
		sys := newSys()
		if _, err := sys.LoadRegions("a", a, tech); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.LoadRegions("b", b, tech); err != nil {
			t.Fatal(err)
		}
		pairs, _, err := SpatialJoinIndexed(sys, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != want {
			t.Fatalf("%v: %d pairs, want %d", tech, len(pairs), want)
		}
	}
}

func TestSpatialJoinPBSMMatchesOracle(t *testing.T) {
	area := geom.NewRect(0, 0, 500, 500)
	aPolys := datagen.RandomPolygons(100, 5, 20, area, 19)
	bPolys := datagen.RandomPolygons(90, 4, 25, area, 23)
	a := make([]geom.Region, len(aPolys))
	for i, pg := range aPolys {
		a[i] = geom.RegionOf(pg)
	}
	b := make([]geom.Region, len(bPolys))
	for i, pg := range bPolys {
		b[i] = geom.RegionOf(pg)
	}
	want := joinOracle(a, b)
	sys := newSys()
	if err := sys.LoadRegionsHeap("a", a); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRegionsHeap("b", b); err != nil {
		t.Fatal(err)
	}
	for _, gridSide := range []int{1, 4, 9} {
		pairs, _, err := SpatialJoinPBSM(sys, "a", "b", gridSide)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != want {
			t.Fatalf("grid %d: %d pairs, want %d", gridSide, len(pairs), want)
		}
	}
}

func TestPlaneSweepJoinMatchesNestedLoop(t *testing.T) {
	area := geom.NewRect(0, 0, 200, 200)
	aPolys := datagen.RandomPolygons(60, 4, 15, area, 29)
	bPolys := datagen.RandomPolygons(70, 4, 18, area, 31)
	enc := func(polys []geom.Polygon) []string {
		out := make([]string, len(polys))
		for i, pg := range polys {
			out[i] = geomio.EncodeRegion(geom.RegionOf(pg))
		}
		return out
	}
	la, lb := enc(aPolys), enc(bPolys)
	count := 0
	err := planeSweepJoin(la, lb, func(_, _ string, _ geom.Rect) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, x := range aPolys {
		for _, y := range bPolys {
			if x.Bounds().Intersects(y.Bounds()) {
				want++
			}
		}
	}
	if count != want {
		t.Fatalf("sweep found %d, nested loop %d", count, want)
	}
}
