package ops

import (
	"fmt"
	"sort"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// ANNResult pairs a point with its nearest neighbour.
type ANNResult struct {
	Point, Neighbor geom.Point
	Dist            float64
}

// AllNearestNeighbors computes, for every point of a disjointly indexed
// file, its nearest other point (the ANN join of the SpatialHadoop
// literature). Round one answers each point within its own partition and
// finalizes the points whose nearest-neighbour circle stays inside the
// partition; round two ships each remaining "uncertain" point to exactly
// the partitions its circle reaches and keeps the global minimum.
func AllNearestNeighbors(sys *core.System, file string) ([]ANNResult, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	if f.Index == nil || !f.Index.Disjoint() {
		return nil, nil, fmt.Errorf("ops: ann requires a disjoint spatial index on %q", file)
	}
	splits := f.Splits()

	// ---- Round 1: local nearest neighbours, finalize interior points ----
	out1 := file + ".ann.r1"
	job1 := &mapreduce.Job{
		Name:   "ann-local",
		Splits: splits,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for i, p := range pts {
				best, ok := localNN(sys, split, p)
				// The uncertainty radius: a foreign point can be closer
				// only if the current best circle leaves the partition.
				if ok && split.MBR.Buffer(-best.Dist).ContainsPoint(p) {
					ctx.Write("F|" + encodeANN(ANNResult{Point: p, Neighbor: best.P, Dist: best.Dist}))
					ctx.Inc("ann.final.round1", 1)
					continue
				}
				rec := ANNResult{Point: p, Dist: -1}
				if ok {
					rec.Neighbor, rec.Dist = best.P, best.Dist
				}
				ctx.Write("U|" + split.Partition + "|" + encodeANN(rec))
				_ = i
			}
			return nil
		},
		Output: out1,
	}
	rep1, err := sys.Cluster().Run(job1)
	if err != nil {
		return nil, nil, err
	}

	recs, err := sys.FS().ReadAll(out1)
	if err != nil {
		return nil, nil, err
	}
	var final []ANNResult
	// Uncertain points routed to every foreign partition their circle
	// touches, broadcast per partition through the job configuration.
	route := make(map[string][]string)
	var uncertain []ANNResult
	var uncertainHome []string
	for _, rec := range recs {
		switch {
		case strings.HasPrefix(rec, "F|"):
			r, err := decodeANN(strings.TrimPrefix(rec, "F|"))
			if err != nil {
				return nil, nil, err
			}
			final = append(final, r)
		case strings.HasPrefix(rec, "U|"):
			body := strings.TrimPrefix(rec, "U|")
			i := strings.IndexByte(body, '|')
			if i < 0 {
				return nil, nil, fmt.Errorf("ops: bad ann record %q", rec)
			}
			r, err := decodeANN(body[i+1:])
			if err != nil {
				return nil, nil, err
			}
			uncertain = append(uncertain, r)
			uncertainHome = append(uncertainHome, body[:i])
		default:
			return nil, nil, fmt.Errorf("ops: bad ann record %q", rec)
		}
	}
	if len(uncertain) == 0 {
		sortANN(final)
		return final, rep1, nil
	}
	for ui, r := range uncertain {
		for _, s := range splits {
			if s.Partition == uncertainHome[ui] {
				continue
			}
			if r.Dist >= 0 && s.MBR.MinDistPoint(r.Point) > r.Dist {
				continue
			}
			route[s.Partition] = append(route[s.Partition], encodeANN(r))
		}
	}

	// ---- Round 2: probe foreign partitions, take the global minimum ----
	conf := make(map[string]string, len(route))
	for k, v := range route {
		conf[k] = strings.Join(v, ";")
	}
	out2 := file + ".ann.r2"
	job2 := &mapreduce.Job{
		Name:   "ann-probe",
		Splits: splits,
		Conf:   conf,
		Filter: func(in []*mapreduce.Split) []*mapreduce.Split {
			var keep []*mapreduce.Split
			for _, s := range in {
				if _, ok := route[s.Partition]; ok {
					keep = append(keep, s)
				}
			}
			return keep
		},
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			probes := ctx.Config(split.Partition)
			if probes == "" {
				return nil
			}
			for _, enc := range strings.Split(probes, ";") {
				r, err := decodeANN(enc)
				if err != nil {
					return err
				}
				if best, ok := localNN(sys, split, r.Point); ok {
					ctx.Emit(geomio.EncodePoint(r.Point), encodeANN(ANNResult{
						Point: r.Point, Neighbor: best.P, Dist: best.Dist,
					}))
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			best := ANNResult{Dist: -1}
			for _, v := range values {
				r, err := decodeANN(v)
				if err != nil {
					return err
				}
				if best.Dist < 0 || (r.Dist >= 0 && r.Dist < best.Dist) {
					best = r
				}
			}
			if best.Dist >= 0 {
				ctx.Write(encodeANN(best))
			}
			return nil
		},
		NumReducers: sys.Cluster().Workers(),
		Output:      out2,
	}
	rep2, err := sys.Cluster().Run(job2)
	if err != nil {
		return nil, nil, err
	}
	foreign := make(map[geom.Point]ANNResult)
	recs2, err := sys.FS().ReadAll(out2)
	if err != nil {
		return nil, nil, err
	}
	for _, rec := range recs2 {
		r, err := decodeANN(rec)
		if err != nil {
			return nil, nil, err
		}
		foreign[r.Point] = r
	}
	for _, r := range uncertain {
		if fr, ok := foreign[r.Point]; ok && (r.Dist < 0 || fr.Dist < r.Dist) {
			r = fr
		}
		if r.Dist >= 0 {
			final = append(final, r)
		}
	}
	sortANN(final)
	return final, rep2, nil
}

// localNN finds the nearest point to p among the split's records,
// excluding p itself (one coincident duplicate still counts as a
// neighbour at distance zero).
func localNN(sys *core.System, split *mapreduce.Split, p geom.Point) (geom.PointPair, bool) {
	bestD := -1.0
	var bestP geom.Point
	selfSkipped := false
	for _, b := range split.Blocks {
		idx, err := sys.LocalIndex(b)
		if err != nil {
			return geom.PointPair{}, false
		}
		recs := b.Records()
		for _, nb := range idx.Nearest(p, 2) {
			q := geomio.MustDecodePoint(recs[nb.Entry.ID])
			if q.Equal(p) && !selfSkipped {
				selfSkipped = true
				continue
			}
			if bestD < 0 || nb.Dist < bestD {
				bestD, bestP = nb.Dist, q
			}
		}
	}
	if bestD < 0 {
		return geom.PointPair{}, false
	}
	return geom.PointPair{P: bestP, Q: p, Dist: bestD}, true
}

func encodeANN(r ANNResult) string {
	return geomio.EncodePoint(r.Point) + " " + geomio.EncodePoint(r.Neighbor) + " " +
		fmt.Sprintf("%.17g", r.Dist)
}

func decodeANN(s string) (ANNResult, error) {
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return ANNResult{}, fmt.Errorf("ops: bad ann encoding %q", s)
	}
	p, err := geomio.DecodePoint(parts[0])
	if err != nil {
		return ANNResult{}, err
	}
	nb, err := geomio.DecodePoint(parts[1])
	if err != nil {
		return ANNResult{}, err
	}
	var d float64
	if _, err := fmt.Sscanf(parts[2], "%g", &d); err != nil {
		return ANNResult{}, err
	}
	return ANNResult{Point: p, Neighbor: nb, Dist: d}, nil
}

func sortANN(rs []ANNResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Point.Less(rs[j].Point) })
}
