package ops

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"strconv"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
)

// PlotConfig controls the distributed plot operation.
type PlotConfig struct {
	// Width and Height of the output raster in pixels.
	Width, Height int
	// Extent is the world rectangle mapped onto the raster; when empty it
	// defaults to the file's index space (or data MBR for heap files).
	Extent geom.Rect
	// Out names the job's composited output file (default
	// file+".plot.out"). Concurrent plots of the same file must use
	// distinct names.
	Out string
}

// Plot rasterizes a points file into a density image, the visualization
// operation of the SpatialHadoop family (HadoopViz): every map task
// renders its partition into a partial raster, partial rasters are
// composited by summing counts, and the final image grades pixel
// intensity by point density. The returned image is ready for PNG
// encoding; EncodePlotPNG wraps that.
func Plot(sys *core.System, file string, cfg PlotConfig) (*image.Gray, *mapreduce.Report, error) {
	return PlotCtx(context.Background(), sys, file, cfg)
}

// PlotCtx is Plot under a context: the job runs through RunCtx
// (admission, cancellation, request-trace spans), and the plot's
// partition accesses feed the system's hot-partition telemetry (filter
// decisions only — a plot has no match predicate).
func PlotCtx(ctx context.Context, sys *core.System, file string, cfg PlotConfig) (*image.Gray, *mapreduce.Report, error) {
	if cfg.Width <= 0 {
		cfg.Width = 512
	}
	if cfg.Height <= 0 {
		cfg.Height = 512
	}
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	extent := cfg.Extent
	if extent.IsEmpty() || extent.Area() == 0 {
		if f.Index != nil {
			extent = f.Index.Space
		} else {
			pts, err := sys.ReadPointsCtx(ctx, file)
			if err != nil {
				return nil, nil, err
			}
			extent = geom.RectOf(pts)
		}
	}
	if extent.IsEmpty() || extent.Width() <= 0 || extent.Height() <= 0 {
		return nil, nil, fmt.Errorf("ops: plot extent is empty")
	}

	counts := make([]uint32, cfg.Width*cfg.Height)
	out := cfg.Out
	if out == "" {
		out = file + ".plot.out"
	}
	job := &mapreduce.Job{
		Name:   "plot",
		Splits: f.Splits(),
		Filter: withHeat(sys, file, func(splits []*mapreduce.Split) []*mapreduce.Split {
			var keep []*mapreduce.Split
			for _, s := range splits {
				if s.Cover().Intersects(extent) {
					keep = append(keep, s)
				}
			}
			return keep
		}),
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			// Render the partition into a sparse partial raster and ship
			// the non-zero pixels, mirroring HadoopViz's partial images.
			local := make(map[int]uint32)
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for _, p := range pts {
				px, py, ok := rasterize(p, extent, cfg.Width, cfg.Height)
				if !ok {
					continue
				}
				local[py*cfg.Width+px]++
			}
			for pix, c := range local {
				ctx.Emit(fmt.Sprintf("%d", pix%sysReducers(sys)), fmt.Sprintf("%d:%d", pix, c))
			}
			ctx.Inc("plot.partial.pixels", int64(len(local)))
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			// Composite: sum the partial counts per pixel.
			sums := make(map[int]uint32)
			for _, v := range values {
				pix, c, err := parsePixelCount(v)
				if err != nil {
					return err
				}
				sums[pix] += c
			}
			for pix, c := range sums {
				ctx.Write(fmt.Sprintf("%d:%d", pix, c))
			}
			return nil
		},
		NumReducers: sysReducers(sys),
		Output:      out,
	}
	rep, err := sys.Cluster().RunCtx(ctx, job)
	if err != nil {
		return nil, nil, err
	}
	recs, err := sys.FS().ReadAllCtx(ctx, out)
	if err != nil {
		return nil, nil, err
	}
	var max uint32
	for _, rec := range recs {
		pix, c, err := parsePixelCount(rec)
		if err != nil {
			return nil, nil, err
		}
		if pix >= 0 && pix < len(counts) {
			counts[pix] += c
			if counts[pix] > max {
				max = counts[pix]
			}
		}
	}

	img := image.NewGray(image.Rect(0, 0, cfg.Width, cfg.Height))
	if max > 0 {
		for i, c := range counts {
			if c == 0 {
				continue
			}
			// Square-root grading keeps sparse areas visible.
			v := 55 + 200*sqrtRatio(c, max)
			img.SetGray(i%cfg.Width, i/cfg.Width, color.Gray{Y: uint8(v)})
		}
	}
	return img, rep, nil
}

func sysReducers(sys *core.System) int {
	w := sys.Cluster().Workers()
	if w < 1 {
		return 1
	}
	return w
}

// rasterize maps a world point to pixel coordinates (y axis flipped so
// north is up).
// parsePixelCount parses a "pix:count" partial-raster record; this runs
// once per non-empty pixel per plot request, so it avoids the fmt
// scanner.
func parsePixelCount(s string) (int, uint32, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("plot: bad pixel record %q", s)
	}
	pix, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, 0, fmt.Errorf("plot: bad pixel record %q: %v", s, err)
	}
	c, err := strconv.ParseUint(s[i+1:], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("plot: bad pixel record %q: %v", s, err)
	}
	return pix, uint32(c), nil
}

func rasterize(p geom.Point, extent geom.Rect, w, h int) (int, int, bool) {
	if !extent.ContainsPoint(p) {
		return 0, 0, false
	}
	px := int((p.X - extent.MinX) / extent.Width() * float64(w))
	py := int((extent.MaxY - p.Y) / extent.Height() * float64(h))
	if px >= w {
		px = w - 1
	}
	if py >= h {
		py = h - 1
	}
	return px, py, true
}

func sqrtRatio(c, max uint32) float64 {
	return math.Sqrt(float64(c) / float64(max))
}

// EncodePlotPNG renders the plot to PNG bytes.
func EncodePlotPNG(img *image.Gray) ([]byte, error) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PlotDataURL is a convenience for embedding small plots in reports.
func PlotDataURL(img *image.Gray) (string, error) {
	b, err := EncodePlotPNG(img)
	if err != nil {
		return "", err
	}
	return "data:image/png;base64," + base64.StdEncoding.EncodeToString(b), nil
}
