package ops

import (
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/mapreduce"
)

// Hot-partition accounting for the query operations. Scan/prune decisions
// are recorded master-side in the filter step — it runs exactly once per
// job, so no retry can double-count them. Record and match counts are
// task-side and therefore ride the win-gated TaskContext counters under
// the prefixes below: only the winning attempt's buffer merges into the
// job report, and foldPartitionHeat moves the totals into the system's
// sindex.Hotness after the job completes. Pair splits (spatial join) are
// not heat-tracked: their "a*b" partition keys name no single partition
// of either input.

const (
	// heatRecordsPrefix+partition counts records map tasks read from the
	// partition; heatMatchesPrefix+partition counts those matching the
	// query predicate.
	heatRecordsPrefix = "ops.part.records."
	heatMatchesPrefix = "ops.part.matches."
)

// withHeat wraps a filter function to record its per-partition keep/prune
// decisions in the system's hotness aggregator.
func withHeat(sys *core.System, file string, inner mapreduce.FilterFunc) mapreduce.FilterFunc {
	return func(splits []*mapreduce.Split) []*mapreduce.Split {
		kept := inner(splits)
		hot := sys.Hotness()
		keptSet := make(map[*mapreduce.Split]bool, len(kept))
		for _, s := range kept {
			keptSet[s] = true
		}
		for _, s := range splits {
			if keptSet[s] {
				hot.RecordScan(file, s.Partition)
			} else {
				hot.RecordPrune(file, s.Partition)
			}
		}
		return kept
	}
}

// countPartitionRecords buffers the split's record count under its
// partition's heat counter (no-op for heap splits).
func countPartitionRecords(tc *mapreduce.TaskContext, split *mapreduce.Split) {
	if split.Partition != "" {
		tc.Inc(heatRecordsPrefix+split.Partition, int64(split.NumRecords()))
	}
}

// countPartitionMatches buffers n query matches under the split's
// partition heat counter (no-op for heap splits).
func countPartitionMatches(tc *mapreduce.TaskContext, split *mapreduce.Split, n int64) {
	if split.Partition != "" {
		tc.Inc(heatMatchesPrefix+split.Partition, n)
	}
}

// foldPartitionHeat moves a finished job's per-partition record/match
// counters into the system's hotness aggregator.
func foldPartitionHeat(sys *core.System, file string, rep *mapreduce.Report) {
	if rep == nil {
		return
	}
	hot := sys.Hotness()
	for name, v := range rep.Counters {
		if part, ok := strings.CutPrefix(name, heatRecordsPrefix); ok {
			hot.AddRecords(file, part, v)
		} else if part, ok := strings.CutPrefix(name, heatMatchesPrefix); ok {
			hot.AddMatches(file, part, v)
		}
	}
}
