package ops

import (
	"slices"
	"sort"

	"spatialhadoop/internal/geom"
)

// Partition-level executors for the sharded serving engine: a worker
// holding a pinned replica answers one partition's share of a range or
// kNN query and ships the fragment back; the master merges fragments
// with the same canonical comparators the local and MapReduce engines
// use, so all three produce byte-identical responses.

// KNNCandidate is the exported (dist, record) candidate form exchanged
// between serving shards. Dist carries the exact squared-free distance a
// partition's R-tree computed; Rec the record text, which breaks ties.
type KNNCandidate struct {
	Dist float64
	Rec  string
}

// LessKNNCandidate is the canonical (dist, record) comparator shared with
// the kNN reduce and the local engine: nearer first, record text breaking
// ties, so every engine picks the same k points.
func LessKNNCandidate(a, b KNNCandidate) bool {
	return lessCandidate(knnCandidate{dist: a.Dist, rec: a.Rec}, knnCandidate{dist: b.Dist, rec: b.Rec})
}

// SortKNNCandidates sorts candidates canonically and truncates to k,
// exactly as the job's reduce and the local engine's round closure do.
func SortKNNCandidates(cands []KNNCandidate, k int) []KNNCandidate {
	sort.Slice(cands, func(i, j int) bool { return LessKNNCandidate(cands[i], cands[j]) })
	if k >= 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// PartitionRangePoints returns the pinned partition's points inside query
// in ascending entry-ID order. Pinned points are canonically sorted, so
// the fragment is already in (X, then Y) order.
func PartitionRangePoints(part *LocalPartition, query geom.Rect) []geom.Point {
	ids := part.Tree.Search(query, nil)
	slices.Sort(ids)
	out := make([]geom.Point, len(ids))
	for i, id := range ids {
		out[i] = part.Pts[id]
	}
	return out
}

// PartitionKNNCandidates returns the partition's tie-complete k-nearest
// candidate set for q, mirroring the per-partition step of the two-round
// kNN protocol (LocalKNNPoints and the kNN map task).
func PartitionKNNCandidates(part *LocalPartition, q geom.Point, k int) []KNNCandidate {
	nbs := part.Tree.NearestWithTies(q, k)
	out := make([]KNNCandidate, len(nbs))
	for i, nb := range nbs {
		out[i] = KNNCandidate{Dist: nb.Dist, Rec: part.Recs[nb.Entry.ID]}
	}
	return out
}
