package ops

import (
	"fmt"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
)

// testSource is a LocalSource pinning on demand with no budget: what the
// serving layer's memory tier does, minus eviction.
type testSource struct {
	sf   *sindex.SFilter
	pins map[string]*LocalPartition
}

func (s *testSource) Pin(sp *mapreduce.Split) (*LocalPartition, error) {
	if p, ok := s.pins[sp.Partition]; ok {
		return p, nil
	}
	p, err := PinSplit(sp)
	if err != nil {
		return nil, err
	}
	if s.pins == nil {
		s.pins = map[string]*LocalPartition{}
	}
	s.pins[sp.Partition] = p
	// Refine the bitmap exactly as the memory tier does on pin.
	if s.sf != nil {
		s.sf.Refine(p.Key, p.Pts)
	}
	return p, nil
}

func (s *testSource) Filter() *sindex.SFilter { return s.sf }

var localTechniques = []sindex.Technique{
	sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree,
	sindex.KDTree, sindex.ZCurve, sindex.Hilbert,
}

// localPoints builds a point set with heavy duplication so kNN tie-breaks
// are genuinely exercised: every third point repeats an earlier one.
func localPoints(n int, area geom.Rect, seed int64) []geom.Point {
	pts := datagen.Points(datagen.Clustered, n, area, seed)
	for i := 2; i < len(pts); i += 3 {
		pts[i] = pts[i-2]
	}
	return pts
}

// TestLocalRangeMatchesMapReduce: the local engine and the MapReduce job
// must return the same multiset of points for every technique and query.
func TestLocalRangeMatchesMapReduce(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := localPoints(3000, area, 11)
	queries := []geom.Rect{
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(100, 100, 320, 260),
		geom.NewRect(900, 900, 950, 950),
		geom.NewRect(-60, -60, -10, -10),
		geom.NewRect(499.5, 499.5, 500.5, 500.5),
	}
	for _, tech := range localTechniques {
		sys := newSys()
		f, err := sys.LoadPoints("pts", pts, tech)
		if err != nil {
			t.Fatal(err)
		}
		src := &testSource{sf: sindex.NewSFilter(f.Index, 0)}
		for qi, q := range queries {
			want, _, err := RangeQueryPointsTo(sys, "pts", q, fmt.Sprintf("pts.rq.%d", qi))
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := LocalRangePoints(sys, "pts", src, q)
			if err != nil {
				t.Fatal(err)
			}
			if !samePointSet(got, want) {
				t.Fatalf("%v q=%v: local %d points != mapreduce %d points", tech, q, len(got), len(want))
			}
			if stats.PartitionsConsulted+stats.PartitionsPruned != stats.PartitionsTotal {
				t.Fatalf("%v: stats don't partition the splits: %+v", tech, stats)
			}
		}
		// Repeat after all partitions are pinned (bitmaps now exact).
		for qi, q := range queries {
			want, _, err := RangeQueryPointsTo(sys, "pts", q, fmt.Sprintf("pts.rq2.%d", qi))
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := LocalRangePoints(sys, "pts", src, q)
			if err != nil {
				t.Fatal(err)
			}
			if !samePointSet(got, want) {
				t.Fatalf("%v q=%v refined: local != mapreduce", tech, q)
			}
		}
	}
}

func samePointSet(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, p := range a {
		count[pointKey(p)]++
	}
	for _, p := range b {
		count[pointKey(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// TestLocalKNNMatchesMapReduce: both engines must pick the exact same k
// points — in the same order — including under distance ties from
// duplicated coordinates, for every technique.
func TestLocalKNNMatchesMapReduce(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := localPoints(1500, area, 23)
	sites := []geom.Point{
		geom.Pt(500, 500), geom.Pt(0, 0), geom.Pt(999, 1), geom.Pt(250, 760),
		pts[4], // exactly on a (duplicated) record
	}
	ks := []int{0, 1, 3, 17, len(pts), len(pts) + 9}
	for _, tech := range localTechniques {
		sys := newSys()
		f, err := sys.LoadPoints("pts", pts, tech)
		if err != nil {
			t.Fatal(err)
		}
		src := &testSource{sf: sindex.NewSFilter(f.Index, 0)}
		for si, q := range sites {
			for _, k := range ks {
				want, _, err := KNNTo(sys, "pts", q, k, fmt.Sprintf("pts.knn.%d.%d", si, k))
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := LocalKNNPoints(sys, "pts", src, q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v q=%v k=%d: local %d results, mapreduce %d", tech, q, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v q=%v k=%d: result %d = %v, want %v", tech, q, k, i, got[i], want[i])
					}
				}
				if stats.Rounds < 1 || stats.Rounds > 2 {
					t.Fatalf("%v: rounds = %d", tech, stats.Rounds)
				}
			}
		}
	}
}

// TestLocalHeapRejected: heap files have no partitions to pin; the local
// executors must refuse them so the planner's indexed-only gate is backed
// by a hard error, not silent wrong answers.
func TestLocalHeapRejected(t *testing.T) {
	sys := newSys()
	if err := sys.LoadPointsHeap("heap", datagen.Points(datagen.Uniform, 100, geom.NewRect(0, 0, 10, 10), 1)); err != nil {
		t.Fatal(err)
	}
	src := &testSource{}
	if _, _, err := LocalRangePoints(sys, "heap", src, geom.NewRect(0, 0, 5, 5)); err == nil {
		t.Fatal("local range over a heap file must error")
	}
	if _, _, err := LocalKNNPoints(sys, "heap", src, geom.Pt(1, 1), 3); err == nil {
		t.Fatal("local knn over a heap file must error")
	}
}
