package ops

import (
	"sort"
	"strconv"
	"strings"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/rtree"
)

// This file makes the core query operations runnable on remote worker
// processes. A worker cannot receive Go closures, so each operation's
// task-side functions are built from a registered job kind plus the job's
// Conf (the broadcast configuration); the in-process path shares the same
// builders, with one difference: it resolves local indexes through the
// System's per-block cache, while a worker (which has no System) bulk-
// loads a fresh R-tree per block. BulkPoints is deterministic, so both
// paths probe identical trees and produce byte-identical output.

// Conf keys broadcast to remote tasks.
const (
	confRangeQuery    = "ops.range.query"
	confKNNQ          = "ops.knn.q"
	confKNNK          = "ops.knn.k"
	confJoinLDisjoint = "ops.join.ldisjoint"
	confJoinRDisjoint = "ops.join.rdisjoint"
	confJoinLSpace    = "ops.join.lspace"
	confJoinRSpace    = "ops.join.rspace"
)

// localIndexFn resolves the R-tree local index of a points block. The
// master passes System.LocalIndex (cached); workers pass freshLocalIndex.
type localIndexFn func(*dfs.Block) (*rtree.Tree, error)

// freshLocalIndex bulk-loads a block's local index from scratch — the
// worker-side path, where no System cache exists. Same records, same
// deterministic bulk load, same tree shape as the master's cache.
func freshLocalIndex(b *dfs.Block) (*rtree.Tree, error) {
	pts, err := b.Points()
	if err != nil {
		return nil, err
	}
	return rtree.BulkPoints(pts, rtree.DefaultFanout), nil
}

// rangePointsMap is the map body of the range-points job.
func rangePointsMap(query geom.Rect, localIndex localIndexFn) mapreduce.MapFunc {
	return func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
		countPartitionRecords(ctx, split)
		for _, b := range split.Blocks {
			idx, err := localIndex(b)
			if err != nil {
				return err
			}
			ctx.Inc(CounterRangeBlocksScanned, 1)
			recs := b.Records()
			for _, id := range idx.Search(query, nil) {
				ctx.Inc(CounterRangeMatches, 1)
				countPartitionMatches(ctx, split, 1)
				ctx.Write(recs[id])
			}
		}
		return nil
	}
}

// knnMap is the map body of one kNN round: each block's local index
// nominates its k nearest (with ties), shuffled under a single key.
func knnMap(q geom.Point, k int, localIndex localIndexFn) mapreduce.MapFunc {
	return func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
		countPartitionRecords(ctx, split)
		for _, b := range split.Blocks {
			idx, err := localIndex(b)
			if err != nil {
				return err
			}
			recs := b.Records()
			for _, nb := range idx.NearestWithTies(q, k) {
				countPartitionMatches(ctx, split, 1)
				ctx.Emit("k", encodeCandidate(knnCandidate{dist: nb.Dist, rec: recs[nb.Entry.ID]}))
			}
		}
		return nil
	}
}

// knnReduce merges the candidate set down to the k nearest, in the
// canonical candidate order.
func knnReduce(k int) mapreduce.ReduceFunc {
	return func(ctx *mapreduce.TaskContext, key string, values []string) error {
		cands := make([]knnCandidate, 0, len(values))
		for _, v := range values {
			c, err := decodeCandidate(v)
			if err != nil {
				return err
			}
			cands = append(cands, c)
		}
		sort.Slice(cands, func(i, j int) bool { return lessCandidate(cands[i], cands[j]) })
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, c := range cands {
			ctx.Write(encodeCandidate(c))
		}
		return nil
	}
}

// joinTag encodes the pair split's per-side partition boundaries into the
// split Tag — the only per-task state the indexed join needs beyond Conf,
// carried on the split itself so it ships to workers with the records.
func joinTag(left, right geom.Rect) string {
	return geomio.EncodeRect(left) + "|" + geomio.EncodeRect(right)
}

func parseJoinTag(tag string) (left, right geom.Rect, err error) {
	l, r, ok := strings.Cut(tag, "|")
	if !ok {
		return left, right, strconv.ErrSyntax
	}
	if left, err = geomio.DecodeRect(l); err != nil {
		return left, right, err
	}
	right, err = geomio.DecodeRect(r)
	return left, right, err
}

// indexedJoinMap is the map body of the indexed spatial join: plane-sweep
// the pair split's two block groups, deduplicating replicated matches
// with the reference-point rule on each disjoint side.
func indexedJoinMap(lDisjoint, rDisjoint bool, lSpace, rSpace geom.Rect) mapreduce.MapFunc {
	return func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
		lBound, rBound, err := parseJoinTag(split.Tag)
		if err != nil {
			return err
		}
		lrecs := split.Records()
		rrecs := split.ExtraRecords()
		return planeSweepJoin(lrecs, rrecs, func(lrec, rrec string, overlap geom.Rect) {
			ctx.Inc(CounterJoinCandidates, 1)
			ref := geom.Point{X: overlap.MinX, Y: overlap.MinY}
			if lDisjoint && !ownsRef(lBound, lSpace, ref) {
				ctx.Inc(CounterDedupDropped, 1)
				return
			}
			if rDisjoint && !ownsRef(rBound, rSpace, ref) {
				ctx.Inc(CounterDedupDropped, 1)
				return
			}
			ctx.Write(lrec + "\t" + rrec)
		})
	}
}

func init() {
	mapreduce.RegisterKind("range-points", func(conf map[string]string) (mapreduce.KindFuncs, error) {
		query, err := geomio.DecodeRect(conf[confRangeQuery])
		if err != nil {
			return mapreduce.KindFuncs{}, err
		}
		return mapreduce.KindFuncs{Map: rangePointsMap(query, freshLocalIndex)}, nil
	})
	mapreduce.RegisterKind("knn", func(conf map[string]string) (mapreduce.KindFuncs, error) {
		q, err := geomio.DecodePoint(conf[confKNNQ])
		if err != nil {
			return mapreduce.KindFuncs{}, err
		}
		k, err := strconv.Atoi(conf[confKNNK])
		if err != nil {
			return mapreduce.KindFuncs{}, err
		}
		return mapreduce.KindFuncs{Map: knnMap(q, k, freshLocalIndex), Reduce: knnReduce(k)}, nil
	})
	mapreduce.RegisterKind("spatial-join", func(conf map[string]string) (mapreduce.KindFuncs, error) {
		var lSpace, rSpace geom.Rect
		var err error
		if s := conf[confJoinLSpace]; s != "" {
			if lSpace, err = geomio.DecodeRect(s); err != nil {
				return mapreduce.KindFuncs{}, err
			}
		}
		if s := conf[confJoinRSpace]; s != "" {
			if rSpace, err = geomio.DecodeRect(s); err != nil {
				return mapreduce.KindFuncs{}, err
			}
		}
		return mapreduce.KindFuncs{
			Map: indexedJoinMap(conf[confJoinLDisjoint] == "1", conf[confJoinRDisjoint] == "1", lSpace, rSpace),
		}, nil
	})
}
