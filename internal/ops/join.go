package ops

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// JoinPair is one spatial join result: the indices of the matching records
// in the left and right inputs are not preserved across the distributed
// runtime, so results carry the record encodings themselves.
type JoinPair struct {
	Left, Right string
}

// SpatialJoinIndexed joins two spatially indexed region files on the
// MBR-intersects predicate (the distributed join of SpatialHadoop). The
// filter step forms one map task per pair of partitions whose record
// extents (content MBRs) intersect. A matching record pair can surface in
// several pair tasks only through replication, which disjoint techniques
// use; the reference-point rule therefore checks, for each *disjoint*
// side, that the overlap's min corner falls in that side's partition, so
// exactly one task reports each match.
func SpatialJoinIndexed(sys *core.System, left, right string) ([]JoinPair, *mapreduce.Report, error) {
	return SpatialJoinIndexedTo(sys, left, right, left+".join.out")
}

// SpatialJoinIndexedTo is SpatialJoinIndexed writing its result to the
// given output file; concurrent joins must use distinct output names.
func SpatialJoinIndexedTo(sys *core.System, left, right, out string) ([]JoinPair, *mapreduce.Report, error) {
	return SpatialJoinIndexedCtx(context.Background(), sys, left, right, out)
}

// SpatialJoinIndexedCtx is SpatialJoinIndexedTo under a context: the job
// runs through RunCtx (admission, cancellation, request-trace spans).
// Pair splits carry no single-input partition key, so the join does not
// feed per-partition heat.
func SpatialJoinIndexedCtx(ctx context.Context, sys *core.System, left, right, out string) ([]JoinPair, *mapreduce.Report, error) {
	lf, err := sys.Open(left)
	if err != nil {
		return nil, nil, err
	}
	rf, err := sys.Open(right)
	if err != nil {
		return nil, nil, err
	}
	lDisjoint := lf.Index != nil && lf.Index.Disjoint()
	rDisjoint := rf.Index != nil && rf.Index.Disjoint()
	var lSpace, rSpace geom.Rect
	if lDisjoint {
		lSpace = lf.Index.Space
	}
	if rDisjoint {
		rSpace = rf.Index.Space
	}
	lsplits := lf.Splits()
	rsplits := rf.Splits()

	extent := func(s *mapreduce.Split) geom.Rect {
		if !s.ContentMBR.IsEmpty() {
			return s.ContentMBR
		}
		return s.MBR
	}

	var pairs []*mapreduce.Split
	for _, ls := range lsplits {
		for _, rs := range rsplits {
			if !extent(ls).Intersects(extent(rs)) {
				continue
			}
			pairs = append(pairs, &mapreduce.Split{
				Partition: ls.Partition + "*" + rs.Partition,
				MBR:       ls.MBR.Union(rs.MBR),
				Blocks:    ls.Blocks,
				Extra:     rs.Blocks,
				// The per-side boundaries ride the split's Tag so they ship
				// to remote workers with the records.
				Tag: joinTag(ls.MBR, rs.MBR),
			})
		}
	}

	conf := map[string]string{}
	if lDisjoint {
		conf[confJoinLDisjoint] = "1"
		conf[confJoinLSpace] = geomio.EncodeRect(lSpace)
	}
	if rDisjoint {
		conf[confJoinRDisjoint] = "1"
		conf[confJoinRSpace] = geomio.EncodeRect(rSpace)
	}
	job := &mapreduce.Job{
		Name:   "spatial-join",
		Kind:   "spatial-join",
		Conf:   conf,
		Splits: pairs,
		Map:    indexedJoinMap(lDisjoint, rDisjoint, lSpace, rSpace),
		Output: out,
	}
	rep, err := sys.Cluster().RunCtx(ctx, job)
	if err != nil {
		return nil, nil, err
	}
	return readJoinOutput(ctx, sys, out, rep)
}

// SpatialJoinPBSM joins two heap region files with the
// partition-based spatial merge strategy: map tasks replicate each record
// to the uniform grid cells its MBR overlaps, and each reduce group joins
// one cell with reference-point deduplication. This is the "Hadoop"
// baseline join that needs no pre-built index but reshuffles both inputs.
func SpatialJoinPBSM(sys *core.System, left, right string, gridSide int) ([]JoinPair, *mapreduce.Report, error) {
	if gridSide < 1 {
		gridSide = 8
	}
	// Compute the joint data space (one scan; in Hadoop this is a cheap
	// pre-pass or catalogue statistic).
	space := geom.EmptyRect()
	for _, name := range []string{left, right} {
		regs, err := sys.ReadRegions(name)
		if err != nil {
			return nil, nil, err
		}
		for _, rg := range regs {
			space = space.Union(rg.Bounds())
		}
	}
	if space.IsEmpty() {
		return nil, nil, nil
	}
	space = space.Buffer(1e-9 * (1 + space.Width() + space.Height()))
	cw := space.Width() / float64(gridSide)
	ch := space.Height() / float64(gridSide)

	cellOf := func(ix, iy int) geom.Rect {
		return geom.Rect{
			MinX: space.MinX + float64(ix)*cw,
			MinY: space.MinY + float64(iy)*ch,
			MaxX: space.MinX + float64(ix+1)*cw,
			MaxY: space.MinY + float64(iy)*ch + ch,
		}
	}
	cellsFor := func(b geom.Rect) []string {
		x0 := clampi(int((b.MinX-space.MinX)/cw), gridSide)
		x1 := clampi(int((b.MaxX-space.MinX)/cw), gridSide)
		y0 := clampi(int((b.MinY-space.MinY)/ch), gridSide)
		y1 := clampi(int((b.MaxY-space.MinY)/ch), gridSide)
		var keys []string
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				keys = append(keys, cellKey(x, y))
			}
		}
		return keys
	}

	// One split per block, tagged with the side it came from.
	var splits []*mapreduce.Split
	for _, spec := range []struct{ name, side string }{{left, "L"}, {right, "R"}} {
		f, err := sys.FS().Open(spec.name)
		if err != nil {
			return nil, nil, err
		}
		for _, b := range f.Blocks {
			splits = append(splits, &mapreduce.Split{
				MBR:    geom.WorldRect(),
				Blocks: []*dfs.Block{b},
				Tag:    spec.side,
			})
		}
	}

	out := left + ".pbsmjoin.out"
	job := &mapreduce.Job{
		Name:   "pbsm-join",
		Splits: splits,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			for _, rec := range split.Records() {
				rg, err := geomio.DecodeRegion(rec)
				if err != nil {
					return err
				}
				for _, key := range cellsFor(rg.Bounds()) {
					ctx.Emit(key, split.Tag+rec)
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			ix, iy := parseCellKey(key)
			cell := cellOf(ix, iy)
			var lrecs, rrecs []string
			for _, v := range values {
				if strings.HasPrefix(v, "L") {
					lrecs = append(lrecs, v[1:])
				} else {
					rrecs = append(rrecs, v[1:])
				}
			}
			return planeSweepJoin(lrecs, rrecs, func(lrec, rrec string, overlap geom.Rect) {
				ref := geom.Point{X: overlap.MinX, Y: overlap.MinY}
				if ownsRef(cell, space, ref) {
					ctx.Write(lrec + "\t" + rrec)
				}
			})
		},
		NumReducers: sys.Cluster().Workers(),
		Output:      out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	return readJoinOutput(context.Background(), sys, out, rep)
}

// planeSweepJoin reports every pair of regions with intersecting MBRs via
// a sweep over x.
func planeSweepJoin(lrecs, rrecs []string, report func(lrec, rrec string, overlap geom.Rect)) error {
	type item struct {
		rec string
		b   geom.Rect
	}
	parse := func(recs []string) ([]item, error) {
		out := make([]item, len(recs))
		for i, r := range recs {
			rg, err := geomio.DecodeRegion(r)
			if err != nil {
				return nil, err
			}
			out[i] = item{rec: r, b: rg.Bounds()}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].b.MinX < out[j].b.MinX })
		return out, nil
	}
	ls, err := parse(lrecs)
	if err != nil {
		return err
	}
	rs, err := parse(rrecs)
	if err != nil {
		return err
	}
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		if ls[i].b.MinX <= rs[j].b.MinX {
			for k := j; k < len(rs) && rs[k].b.MinX <= ls[i].b.MaxX; k++ {
				if ls[i].b.Intersects(rs[k].b) {
					report(ls[i].rec, rs[k].rec, ls[i].b.Intersect(rs[k].b))
				}
			}
			i++
		} else {
			for k := i; k < len(ls) && ls[k].b.MinX <= rs[j].b.MaxX; k++ {
				if ls[k].b.Intersects(rs[j].b) {
					report(ls[k].rec, rs[j].rec, ls[k].b.Intersect(rs[j].b))
				}
			}
			j++
		}
	}
	return nil
}

func readJoinOutput(ctx context.Context, sys *core.System, out string, rep *mapreduce.Report) ([]JoinPair, *mapreduce.Report, error) {
	recs, err := sys.FS().ReadAllCtx(ctx, out)
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]JoinPair, 0, len(recs))
	for _, r := range recs {
		i := strings.IndexByte(r, '\t')
		if i < 0 {
			continue
		}
		pairs = append(pairs, JoinPair{Left: r[:i], Right: r[i+1:]})
	}
	return pairs, rep, nil
}

func clampi(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func cellKey(x, y int) string {
	return "g" + strconv.Itoa(x) + "_" + strconv.Itoa(y)
}

func parseCellKey(key string) (int, int) {
	body := strings.TrimPrefix(key, "g")
	parts := strings.Split(body, "_")
	if len(parts) != 2 {
		return 0, 0
	}
	x, _ := strconv.Atoi(parts[0])
	y, _ := strconv.Atoi(parts[1])
	return x, y
}
