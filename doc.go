// Package spatialhadoop is a from-scratch Go reproduction of
// SpatialHadoop ("SpatialHadoop: towards flexible and scalable spatial
// processing using MapReduce", SIGMOD 2014) together with the CG_Hadoop
// computational geometry suite built on it ("Scalable computational
// geometry in MapReduce", VLDB Journal 2019).
//
// The implementation lives under internal/:
//
//   - geom, dsu, voronoi: the computational geometry kernel
//   - dfs, mapreduce: the HDFS-like block store and MapReduce runtime
//   - sindex, rtree, core: the two-level spatial index and system facade
//   - ops: range query, kNN, spatial join
//   - cg: the six CG_Hadoop operations in all paper variants
//   - datagen, bench: evaluation workloads and the figure-by-figure harness
//
// See README.md for a tour, DESIGN.md for the architecture and paper
// mapping, and EXPERIMENTS.md for reproduction results.
package spatialhadoop
