// Integration tests: whole-system flows across block sizes, partitioning
// techniques and injected failures — the cross-module behaviours no unit
// test sees.
package spatialhadoop_test

import (
	"math"
	"sort"
	"testing"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// TestEndToEndPipeline loads one clustered dataset at several block sizes
// and runs every operation, comparing against single-machine oracles.
func TestEndToEndPipeline(t *testing.T) {
	area := geom.NewRect(0, 0, 50_000, 50_000)
	pts := datagen.Points(datagen.Clustered, 8000, area, 71)

	wantSky := cg.SkylineSingle(pts)
	wantHull := cg.ConvexHullSingle(pts)
	wantCP, _ := cg.ClosestPairSingle(pts)
	wantFP, _ := cg.FarthestPairSingle(pts)
	wantTris := len(cg.DelaunaySingle(pts))

	for _, blockSize := range []int64{4 << 10, 16 << 10, 64 << 10} {
		sys := core.New(core.Config{BlockSize: blockSize, Workers: 6, Seed: 1})
		if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
			t.Fatal(err)
		}

		sky, _, err := cg.SkylineSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if len(sky) != len(wantSky) {
			t.Fatalf("block %d: skyline %d, want %d", blockSize, len(sky), len(wantSky))
		}

		hull, _, err := cg.ConvexHullSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if len(hull) != len(wantHull) {
			t.Fatalf("block %d: hull %d, want %d", blockSize, len(hull), len(wantHull))
		}

		cp, _, err := cg.ClosestPairSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cp.Dist-wantCP.Dist) > 1e-9 {
			t.Fatalf("block %d: closest %g, want %g", blockSize, cp.Dist, wantCP.Dist)
		}

		fp, _, err := cg.FarthestPairSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fp.Dist-wantFP.Dist) > 1e-9 {
			t.Fatalf("block %d: farthest %g, want %g", blockSize, fp.Dist, wantFP.Dist)
		}

		tris, _, err := cg.DelaunaySHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if len(tris) != wantTris {
			t.Fatalf("block %d: %d triangles, want %d", blockSize, len(tris), wantTris)
		}

		vd, _, _, err := cg.VoronoiSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		if len(vd) != len(pts) {
			t.Fatalf("block %d: %d voronoi regions, want %d", blockSize, len(vd), len(pts))
		}
	}
}

// TestOperationsSurviveTaskFailures injects transient task failures and
// checks every operation still produces the exact answer (the runtime must
// retry without duplicating early-flushed output).
func TestOperationsSurviveTaskFailures(t *testing.T) {
	area := geom.NewRect(0, 0, 50_000, 50_000)
	pts := datagen.Points(datagen.Clustered, 6000, area, 73)
	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1})
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	sys.Cluster().InjectFailures(4) // every 4th task attempt dies once

	sky, _, err := cg.SkylineOutputSensitive(sys, "pts", true)
	if err != nil {
		t.Fatal(err)
	}
	want := cg.SkylineSingle(pts)
	if len(sky) != len(want) {
		t.Fatalf("skyline under failures: %d, want %d", len(sky), len(want))
	}

	vd, _, _, err := cg.VoronoiSHadoop(sys, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(vd) != len(pts) {
		t.Fatalf("voronoi under failures: %d regions, want %d", len(vd), len(pts))
	}
	seen := map[geom.Point]bool{}
	for _, sr := range vd {
		if seen[sr.Site] {
			t.Fatalf("site %v emitted twice under failures", sr.Site)
		}
		seen[sr.Site] = true
	}

	cp, _, err := cg.ClosestPairSHadoop(sys, "pts")
	if err != nil {
		t.Fatal(err)
	}
	wantCP, _ := cg.ClosestPairSingle(pts)
	if math.Abs(cp.Dist-wantCP.Dist) > 1e-9 {
		t.Fatalf("closest pair under failures: %g, want %g", cp.Dist, wantCP.Dist)
	}
}

// TestQueriesAgreeAcrossIndexes runs the same queries over every index
// layout and the heap layout; all must agree exactly.
func TestQueriesAgreeAcrossIndexes(t *testing.T) {
	area := geom.NewRect(0, 0, 10_000, 10_000)
	pts := datagen.Points(datagen.Gaussian, 5000, area, 79)
	q := geom.NewRect(4000, 4000, 6000, 6000)

	canonical := func(res []geom.Point) []geom.Point {
		out := append([]geom.Point(nil), res...)
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}

	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1})
	if err := sys.LoadPointsHeap("heap", pts); err != nil {
		t.Fatal(err)
	}
	ref, _, err := ops.RangeQueryPoints(sys, "heap", q)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(ref)

	for _, tech := range []sindex.Technique{
		sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree,
		sindex.KDTree, sindex.ZCurve, sindex.Hilbert,
	} {
		name := "idx-" + tech.String()
		if _, err := sys.LoadPoints(name, pts, tech); err != nil {
			t.Fatal(err)
		}
		got, _, err := ops.RangeQueryPoints(sys, name, q)
		if err != nil {
			t.Fatal(err)
		}
		g := canonical(got)
		if len(g) != len(want) {
			t.Fatalf("%v: %d results, want %d", tech, len(g), len(want))
		}
		for i := range want {
			if !g[i].Equal(want[i]) {
				t.Fatalf("%v: result %d differs", tech, i)
			}
		}

		knnGot, _, err := ops.KNN(sys, name, geom.Pt(5000, 5000), 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(knnGot) != 7 {
			t.Fatalf("%v: kNN returned %d", tech, len(knnGot))
		}
	}
}

// TestDeterministicReruns checks that rerunning an operation on the same
// system yields byte-identical output files.
func TestDeterministicReruns(t *testing.T) {
	area := geom.NewRect(0, 0, 10_000, 10_000)
	pts := datagen.Points(datagen.Clustered, 4000, area, 83)
	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1})
	if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
		t.Fatal(err)
	}
	run := func() []string {
		if _, _, err := cg.SkylineOutputSensitive(sys, "pts", true); err != nil {
			t.Fatal(err)
		}
		recs, err := sys.FS().ReadAll("pts.skyline-os.out")
		if err != nil {
			t.Fatal(err)
		}
		out := append([]string(nil), recs...)
		sort.Strings(out)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("rerun changed output size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rerun changed record %d", i)
		}
	}
}
